//! Experiment presets matching the paper's three simulation setups, and the
//! sweep driver that aggregates 20 random graphs per network size with 95%
//! confidence intervals.

use crate::runner::{run_dgmc_traced, RunMetrics, TraceMode};
use crate::workload::{self, BurstParams, SparseParams, Workload};
use dgmc_core::switch::DgmcConfig;
use dgmc_des::par;
use dgmc_des::stats::Tally;
use dgmc_mctree::SphStrategy;
use dgmc_obs::{MetricsRegistry, Trace};
use dgmc_topology::SpfCache;
use dgmc_topology::{generate, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Which workload generator an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Clustered, conflicting events (Experiments 1-2).
    Bursty(BurstParams),
    /// Well-separated events (Experiment 3).
    Sparse(SparseParams),
}

/// A full experiment specification.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Human-readable name ("Experiment 1 (Figure 6)").
    pub name: &'static str,
    /// Timing regime.
    pub config: DgmcConfig,
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Random graphs per size (20 in the paper).
    pub graphs_per_size: usize,
    /// Workload generator.
    pub workload: WorkloadKind,
    /// Base RNG seed.
    pub seed: u64,
}

/// Experiment 1 (Figure 6): bursty events, computation time dominates
/// (ATM testbed timing).
pub fn experiment1() -> ExperimentSpec {
    ExperimentSpec {
        name: "Experiment 1 (Figure 6): bursty events, high computation time",
        config: DgmcConfig::computation_dominated(),
        sizes: (20..=200).step_by(20).collect(),
        graphs_per_size: 20,
        workload: WorkloadKind::Bursty(BurstParams::default()),
        seed: 0x9661,
    }
}

/// Experiment 2 (Figure 7): bursty events, communication time dominates
/// (WAN timing).
pub fn experiment2() -> ExperimentSpec {
    ExperimentSpec {
        name: "Experiment 2 (Figure 7): bursty events, high communication time",
        config: DgmcConfig::communication_dominated(),
        sizes: (20..=200).step_by(20).collect(),
        graphs_per_size: 20,
        workload: WorkloadKind::Bursty(BurstParams::default()),
        seed: 0x9662,
    }
}

/// Experiment 3 (Figure 8): sparse, well-separated events ("normal traffic
/// periods").
pub fn experiment3() -> ExperimentSpec {
    ExperimentSpec {
        name: "Experiment 3 (Figure 8): normal traffic periods",
        config: DgmcConfig::computation_dominated(),
        sizes: (20..=200).step_by(20).collect(),
        graphs_per_size: 20,
        workload: WorkloadKind::Sparse(SparseParams::default()),
        seed: 0x9663,
    }
}

/// CLI helper shared by the experiment bins: extracts `--jobs N` from raw
/// arguments, defaulting to [`par::default_jobs`] (`min(cores, 8)`).
///
/// Exits the process with status 2 on a malformed or missing value, like
/// the bins' other flag errors.
pub fn jobs_from_args(args: &[String]) -> usize {
    let Some(at) = args.iter().position(|a| a == "--jobs") else {
        return par::default_jobs();
    };
    match args.get(at + 1).and_then(|v| v.parse::<usize>().ok()) {
        Some(jobs) if jobs >= 1 => jobs,
        _ => {
            eprintln!("--jobs expects a positive worker count");
            std::process::exit(2);
        }
    }
}

/// Shrinks a spec for CI/bench use: fewer sizes and graphs.
pub fn quick(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.sizes.retain(|n| n % 40 == 0);
    if spec.sizes.is_empty() {
        spec.sizes = vec![20];
    }
    spec.graphs_per_size = 5;
    spec
}

/// Aggregated metrics for one network size.
#[derive(Debug, Clone, Default)]
pub struct SizeRow {
    /// The network size.
    pub n: usize,
    /// Proposals (topology computations) per event.
    pub proposals: Tally,
    /// Flooding operations per event.
    pub floodings: Tally,
    /// Convergence time in rounds (bursty workloads only).
    pub convergence: Tally,
    /// Runs that failed (diverged / no consensus) — must stay 0.
    pub failures: usize,
}

/// Results of a full experiment sweep.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// The spec that produced the results.
    pub name: String,
    /// One row per network size.
    pub rows: Vec<SizeRow>,
    /// All per-run metric registries merged into one snapshot (see
    /// [`crate::report::write_metrics_snapshot`]).
    pub metrics: MetricsRegistry,
    /// The exemplar causal trace: the span tree of the first graph of the
    /// smallest size (a pure function of the spec seed, so identical for
    /// every `jobs` value; see [`crate::report::write_trace_snapshot`]).
    pub trace: Option<Trace>,
}

fn make_workload(kind: &WorkloadKind, rng: &mut StdRng, net: &Network) -> Workload {
    match kind {
        WorkloadKind::Bursty(p) => workload::bursty(rng, net, p),
        WorkloadKind::Sparse(p) => workload::sparse(rng, net, p),
    }
}

/// Runs the full sweep of an experiment spec, serially.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResults {
    run_experiment_jobs(spec, 1)
}

/// Runs the sweep across `jobs` worker threads.
///
/// Every graph of a size is an independent pure function of its derived
/// seed, so the per-size sweep shards freely; results are folded back **in
/// graph order** (the same fold the serial sweep performs), which keeps the
/// `Tally` float sums, the merged metrics registry and the rendered
/// `*.metrics.json` byte-identical for every `jobs` value.
pub fn run_experiment_jobs(spec: &ExperimentSpec, jobs: usize) -> ExperimentResults {
    run_experiment_with(spec, jobs, |_row| {})
}

/// Runs the sweep, invoking `progress` after each completed size row.
///
/// Each run builds its own network, workload and `Rc`-based simulation (and
/// its own per-run SPF cache) inside the worker thread that claims it, so
/// nothing in the simulation stack is shared across threads.
pub fn run_experiment_with(
    spec: &ExperimentSpec,
    jobs: usize,
    mut progress: impl FnMut(&SizeRow),
) -> ExperimentResults {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut trace = None;
    let exemplar_size = spec.sizes.first().copied();
    for &n in &spec.sizes {
        let mut row = SizeRow {
            n,
            ..SizeRow::default()
        };
        let runs = par::sweep(
            jobs.max(1),
            spec.graphs_per_size,
            |_worker| (),
            |(), g| {
                let seed = spec
                    .seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((n as u64) << 16)
                    .wrapping_add(g as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
                let workload = make_workload(&spec.workload, &mut rng, &net);
                // Every run traces in Metrics mode (per-op convergence
                // samples and gauges land in the merged registry); the
                // first graph of the smallest size additionally keeps its
                // spans as the sweep's exemplar trace.
                let mode = if Some(n) == exemplar_size && g == 0 {
                    TraceMode::Full
                } else {
                    TraceMode::Metrics
                };
                run_dgmc_traced(
                    &net,
                    spec.config,
                    &workload,
                    Rc::new(SphStrategy::new()),
                    SpfCache::new(),
                    mode,
                )
                .ok()
            },
            |_| false,
        );
        // Fold in graph order: identical to the serial sweep, bit for bit.
        for run in runs {
            match run.expect("uncancelled sweeps complete every graph") {
                Some(mut m) => {
                    if let Some(t) = m.trace.take() {
                        trace.get_or_insert(t);
                    }
                    record(&mut row, &m);
                    metrics.merge(&m.registry);
                }
                None => row.failures += 1,
            }
        }
        progress(&row);
        rows.push(row);
    }
    ExperimentResults {
        name: spec.name.to_owned(),
        rows,
        metrics,
        trace,
    }
}

fn record(row: &mut SizeRow, m: &RunMetrics) {
    row.proposals.record(m.proposals_per_event());
    row.floodings.record(m.floodings_per_event());
    if let Some(r) = m.convergence_rounds {
        row.convergence.record(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let e1 = experiment1();
        assert_eq!(e1.sizes.first(), Some(&20));
        assert_eq!(e1.sizes.last(), Some(&200), "networks up to 200 switches");
        assert_eq!(e1.graphs_per_size, 20, "20 graphs per size");
        assert!(matches!(e1.workload, WorkloadKind::Bursty(_)));
        assert!(matches!(experiment3().workload, WorkloadKind::Sparse(_)));
        // Regimes: e1 computation-dominated, e2 communication-dominated.
        assert!(e1.config.tc > e1.config.per_hop);
        let e2 = experiment2();
        assert!(e2.config.per_hop > e2.config.tc);
    }

    #[test]
    fn quick_shrinks_the_sweep() {
        let q = quick(experiment1());
        assert!(q.sizes.len() < experiment1().sizes.len());
        assert_eq!(q.graphs_per_size, 5);
        assert!(!q.sizes.is_empty());
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let spec = ExperimentSpec {
            name: "determinism",
            config: DgmcConfig::computation_dominated(),
            sizes: vec![20, 24],
            graphs_per_size: 4,
            workload: WorkloadKind::Bursty(BurstParams {
                burst_events: 6,
                ..BurstParams::default()
            }),
            seed: 77,
        };
        let serial = run_experiment_jobs(&spec, 1);
        for jobs in [2, 4] {
            let parallel = run_experiment_jobs(&spec, jobs);
            assert_eq!(
                serial.metrics, parallel.metrics,
                "jobs={jobs} changed the merged registry"
            );
            assert_eq!(
                crate::report::metrics_snapshot(&serial.name, &serial.metrics),
                crate::report::metrics_snapshot(&parallel.name, &parallel.metrics),
                "jobs={jobs} changed the metrics snapshot bytes"
            );
            assert_eq!(
                crate::report::csv(&serial),
                crate::report::csv(&parallel),
                "jobs={jobs} changed the per-size statistics"
            );
            let exemplar = serial.trace.as_ref().expect("sweep keeps an exemplar");
            assert_eq!(
                dgmc_obs::chrome_trace_json(exemplar),
                dgmc_obs::chrome_trace_json(parallel.trace.as_ref().unwrap()),
                "jobs={jobs} changed the exemplar trace bytes"
            );
        }
    }

    #[test]
    fn tiny_sweep_produces_rows_without_failures() {
        let spec = ExperimentSpec {
            name: "test",
            config: DgmcConfig::computation_dominated(),
            sizes: vec![20],
            graphs_per_size: 3,
            workload: WorkloadKind::Bursty(BurstParams {
                burst_events: 6,
                ..BurstParams::default()
            }),
            seed: 11,
        };
        let results = run_experiment(&spec);
        assert_eq!(results.rows.len(), 1);
        let row = &results.rows[0];
        assert_eq!(row.failures, 0);
        assert_eq!(row.proposals.len(), 3);
        assert!(row.proposals.mean() >= 1.0);
        // The merged metrics snapshot covers every successful run.
        use dgmc_core::switch::{counters, histograms};
        assert!(results.metrics.counter_value(counters::COMPUTATIONS) > 0);
        assert_eq!(
            results
                .metrics
                .histogram_get(histograms::CONVERGENCE_US)
                .unwrap()
                .count(),
            3,
            "one convergence sample per successful run"
        );
        // The Metrics-mode sweep also contributes per-operation samples and
        // worst-case tree-quality gauges, and keeps one exemplar span tree.
        assert!(
            results
                .metrics
                .histogram_get(histograms::OP_CONVERGENCE_US)
                .unwrap()
                .count()
                > 0
        );
        assert!(
            results
                .metrics
                .gauge_value(&crate::runner::gauges::tree_cost(
                    crate::runner::EXPERIMENT_MC
                ))
                > 0
        );
        let exemplar = results.trace.as_ref().expect("first graph keeps spans");
        exemplar.validate().unwrap();
    }
}
