//! Topology-family robustness: the paper's results are produced on one
//! random-graph model; this study repeats the bursty experiment on
//! structurally different families (Waxman, Barabási–Albert, grid) to show
//! the overhead shapes are properties of the protocol, not of the graphs.

use crate::runner::{run_dgmc, run_dgmc_faulty};
use crate::workload::{self, BurstParams};
use dgmc_core::switch::DgmcConfig;
use dgmc_des::stats::Tally;
use dgmc_des::{net_counters, FaultPlan, LinkFaults, SimDuration};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// The graph families swept by the robustness study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Waxman geometric random graphs (the primary model).
    Waxman,
    /// Barabási–Albert preferential attachment (heavy-tailed degrees).
    BarabasiAlbert,
    /// Square grids (regular, high-diameter).
    Grid,
}

impl Family {
    /// All families in sweep order.
    pub fn all() -> [Family; 3] {
        [Family::Waxman, Family::BarabasiAlbert, Family::Grid]
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Waxman => "waxman",
            Family::BarabasiAlbert => "barabasi-albert",
            Family::Grid => "grid",
        }
    }

    /// Generates an `n`-ish node network of this family.
    pub fn generate(self, rng: &mut StdRng, n: usize) -> Network {
        match self {
            Family::Waxman => generate::waxman(rng, n, &generate::WaxmanParams::default()),
            Family::BarabasiAlbert => generate::barabasi_albert(rng, n, 2, 100),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generate::grid(side, side)
            }
        }
    }
}

/// Aggregated bursty-workload overhead for one family.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// The graph family.
    pub family: Family,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
    /// Convergence in rounds.
    pub convergence: Tally,
    /// Failed runs (must stay 0).
    pub failures: usize,
}

/// Runs the Experiment-1 regime on every family at size `n`.
pub fn family_sweep(n: usize, graphs: usize, seed: u64) -> Vec<FamilyRow> {
    Family::all()
        .into_iter()
        .map(|family| {
            let mut row = FamilyRow {
                family,
                proposals: Tally::new(),
                floodings: Tally::new(),
                convergence: Tally::new(),
                failures: 0,
            };
            for g in 0..graphs {
                let s = seed
                    .wrapping_mul(104_729)
                    .wrapping_add((family.name().len() as u64) << 32)
                    .wrapping_add(g as u64);
                let mut rng = StdRng::seed_from_u64(s);
                let net = family.generate(&mut rng, n);
                let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
                match run_dgmc(
                    &net,
                    DgmcConfig::computation_dominated(),
                    &wl,
                    Rc::new(SphStrategy::new()),
                ) {
                    Ok(m) => {
                        row.proposals.record(m.proposals_per_event());
                        row.floodings.record(m.floodings_per_event());
                        if let Some(r) = m.convergence_rounds {
                            row.convergence.record(r);
                        }
                    }
                    Err(_) => row.failures += 1,
                }
            }
            row
        })
        .collect()
}

/// Aggregated bursty-workload behavior at one recovered-loss rate.
#[derive(Debug, Clone)]
pub struct LossRow {
    /// Per-attempt recovered-loss probability applied to every link.
    pub loss: f64,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
    /// Link-level retransmission rounds per event.
    pub retransmits_per_event: Tally,
    /// Failed runs — divergence, lost consensus or invariant violations
    /// (must stay 0: recovered loss only delays delivery).
    pub failures: usize,
}

/// Repeats the Experiment-1 regime at size `n` under increasing recovered
/// link loss: D-GMC's reliable-flooding assumption is met (every LSA
/// eventually arrives), so overheads may grow with the extra reordering but
/// consensus and the invariant suite must keep holding.
pub fn loss_sweep(n: usize, graphs: usize, seed: u64, losses: &[f64]) -> Vec<LossRow> {
    losses
        .iter()
        .map(|&loss| {
            let mut row = LossRow {
                loss,
                proposals: Tally::new(),
                floodings: Tally::new(),
                retransmits_per_event: Tally::new(),
                failures: 0,
            };
            for g in 0..graphs {
                let s = seed
                    .wrapping_mul(31_337)
                    .wrapping_add((loss * 1e6) as u64)
                    .wrapping_add(g as u64);
                let mut rng = StdRng::seed_from_u64(s);
                let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
                let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
                let plan = FaultPlan::uniform(LinkFaults {
                    loss,
                    hard_loss: 0.0,
                    duplicate: 0.0,
                    jitter: SimDuration::micros(10),
                });
                match run_dgmc_faulty(
                    &net,
                    DgmcConfig::computation_dominated(),
                    &wl,
                    Rc::new(SphStrategy::new()),
                    &plan,
                    s ^ 0xF1A5,
                ) {
                    Ok(m) => {
                        row.proposals.record(m.proposals_per_event());
                        row.floodings.record(m.floodings_per_event());
                        let retx = m.registry.counter_value(net_counters::RETRANSMITS);
                        if m.events > 0 {
                            row.retransmits_per_event
                                .record(retx as f64 / m.events as f64);
                        }
                    }
                    Err(_) => row.failures += 1,
                }
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_keeps_the_bounded_overhead_shape() {
        for row in family_sweep(36, 3, 17) {
            assert_eq!(row.failures, 0, "{}", row.family.name());
            assert!(
                row.proposals.mean() < 5.0,
                "{}: {}",
                row.family.name(),
                row.proposals.mean()
            );
            assert!(row.proposals.mean() >= 1.0);
        }
    }

    #[test]
    fn recovered_loss_never_costs_correctness() {
        let rows = loss_sweep(25, 2, 9, &[0.0, 0.2]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.failures, 0, "loss {} broke a run", row.loss);
            assert!(row.proposals.mean() >= 1.0);
        }
        assert_eq!(rows[0].retransmits_per_event.mean(), 0.0);
        assert!(
            rows[1].retransmits_per_event.mean() > 0.0,
            "20% loss must force retransmissions"
        );
    }

    #[test]
    fn families_generate_their_advertised_structures() {
        let mut rng = StdRng::seed_from_u64(3);
        let ba = Family::BarabasiAlbert.generate(&mut rng, 50);
        assert!(ba.is_connected());
        let grid = Family::Grid.generate(&mut rng, 49);
        assert_eq!(grid.len(), 49);
        assert_eq!(Family::Waxman.name(), "waxman");
    }
}
