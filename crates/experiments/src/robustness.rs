//! Topology-family robustness: the paper's results are produced on one
//! random-graph model; this study repeats the bursty experiment on
//! structurally different families (Waxman, Barabási–Albert, grid) to show
//! the overhead shapes are properties of the protocol, not of the graphs.

use crate::runner::run_dgmc;
use crate::workload::{self, BurstParams};
use dgmc_core::switch::DgmcConfig;
use dgmc_des::stats::Tally;
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// The graph families swept by the robustness study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Waxman geometric random graphs (the primary model).
    Waxman,
    /// Barabási–Albert preferential attachment (heavy-tailed degrees).
    BarabasiAlbert,
    /// Square grids (regular, high-diameter).
    Grid,
}

impl Family {
    /// All families in sweep order.
    pub fn all() -> [Family; 3] {
        [Family::Waxman, Family::BarabasiAlbert, Family::Grid]
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Waxman => "waxman",
            Family::BarabasiAlbert => "barabasi-albert",
            Family::Grid => "grid",
        }
    }

    /// Generates an `n`-ish node network of this family.
    pub fn generate(self, rng: &mut StdRng, n: usize) -> Network {
        match self {
            Family::Waxman => generate::waxman(rng, n, &generate::WaxmanParams::default()),
            Family::BarabasiAlbert => generate::barabasi_albert(rng, n, 2, 100),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generate::grid(side, side)
            }
        }
    }
}

/// Aggregated bursty-workload overhead for one family.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// The graph family.
    pub family: Family,
    /// Proposals per event.
    pub proposals: Tally,
    /// Floodings per event.
    pub floodings: Tally,
    /// Convergence in rounds.
    pub convergence: Tally,
    /// Failed runs (must stay 0).
    pub failures: usize,
}

/// Runs the Experiment-1 regime on every family at size `n`.
pub fn family_sweep(n: usize, graphs: usize, seed: u64) -> Vec<FamilyRow> {
    Family::all()
        .into_iter()
        .map(|family| {
            let mut row = FamilyRow {
                family,
                proposals: Tally::new(),
                floodings: Tally::new(),
                convergence: Tally::new(),
                failures: 0,
            };
            for g in 0..graphs {
                let s = seed
                    .wrapping_mul(104_729)
                    .wrapping_add((family.name().len() as u64) << 32)
                    .wrapping_add(g as u64);
                let mut rng = StdRng::seed_from_u64(s);
                let net = family.generate(&mut rng, n);
                let wl = workload::bursty(&mut rng, &net, &BurstParams::default());
                match run_dgmc(
                    &net,
                    DgmcConfig::computation_dominated(),
                    &wl,
                    Rc::new(SphStrategy::new()),
                ) {
                    Ok(m) => {
                        row.proposals.record(m.proposals_per_event());
                        row.floodings.record(m.floodings_per_event());
                        if let Some(r) = m.convergence_rounds {
                            row.convergence.record(r);
                        }
                    }
                    Err(_) => row.failures += 1,
                }
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_keeps_the_bounded_overhead_shape() {
        for row in family_sweep(36, 3, 17) {
            assert_eq!(row.failures, 0, "{}", row.family.name());
            assert!(
                row.proposals.mean() < 5.0,
                "{}: {}",
                row.family.name(),
                row.proposals.mean()
            );
            assert!(row.proposals.mean() >= 1.0);
        }
    }

    #[test]
    fn families_generate_their_advertised_structures() {
        let mut rng = StdRng::seed_from_u64(3);
        let ba = Family::BarabasiAlbert.generate(&mut rng, 50);
        assert!(ba.is_connected());
        let grid = Family::Grid.generate(&mut rng, 49);
        assert_eq!(grid.len(), 49);
        assert_eq!(Family::Waxman.name(), "waxman");
    }
}
