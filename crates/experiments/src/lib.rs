//! Reproduction harness for the paper's evaluation (Section 4).
//!
//! The paper's simulation study measures, over randomly generated networks
//! of up to 200 switches (20 graphs per size, 95% confidence intervals):
//!
//! 1. **topology computations (proposals) per event** — computational
//!    overhead,
//! 2. **flooding operations per event** — communication overhead,
//! 3. **convergence time in rounds** (`round = Tf + Tc`) — responsiveness,
//!
//! under three regimes: bursty events with computation-dominated timing
//! (Experiment 1 / Figure 6), bursty events with communication-dominated
//! timing (Experiment 2 / Figure 7), and sparse "normal" traffic
//! (Experiment 3 / Figure 8).
//!
//! [`presets::experiment1`], [`presets::experiment2`] and
//! [`presets::experiment3`] encode those setups; [`runner`] executes a
//! single scenario; [`report`] renders the tables. The binaries `exp1`,
//! `exp2`, `exp3`, `compare` and `ablation` drive full reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod churn;
pub mod compare;
pub mod explore;
pub mod longrun;
pub mod multi_mc;
pub mod presets;
pub mod recovery;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod scenario;
pub mod systematic;
pub mod workload;
