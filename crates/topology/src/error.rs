use crate::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or mutating a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A referenced node does not exist in the network.
    UnknownNode(NodeId),
    /// A referenced link does not exist in the network.
    UnknownLink(LinkId),
    /// A link was requested between a node and itself.
    SelfLoop(NodeId),
    /// A link between the two nodes already exists.
    DuplicateLink(NodeId, NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at {n} is not allowed"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "link between {a} and {b} already exists")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        assert_eq!(
            TopologyError::UnknownNode(NodeId(2)).to_string(),
            "unknown node s2"
        );
        assert_eq!(
            TopologyError::UnknownLink(LinkId(1)).to_string(),
            "unknown link l1"
        );
        assert_eq!(
            TopologyError::SelfLoop(NodeId(0)).to_string(),
            "self-loop at s0 is not allowed"
        );
        assert_eq!(
            TopologyError::DuplicateLink(NodeId(1), NodeId(2)).to_string(),
            "link between s1 and s2 already exists"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TopologyError>();
    }
}
