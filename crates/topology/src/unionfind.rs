//! Union-find (disjoint set) structure and connectivity helpers.

use crate::{Network, NodeId};

/// Weighted quick-union with path halving.
///
/// # Examples
///
/// ```
/// use dgmc_topology::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// The union-find of `net`'s nodes with every up link already merged —
    /// the starting point for incremental connectivity tracking (callers
    /// keep calling [`UnionFind::union`] as they add links).
    pub fn of_network(net: &Network) -> UnionFind {
        let mut uf = UnionFind::new(net.len());
        for link in net.up_links() {
            uf.union(link.a.index(), link.b.index());
        }
        uf
    }
}

/// Number of connected components of the network over up links.
pub fn components(net: &Network) -> usize {
    UnionFind::of_network(net).component_count()
}

/// Returns the representative-labeled component of each node over up links.
pub fn component_labels(net: &Network) -> Vec<usize> {
    let mut uf = UnionFind::of_network(net);
    (0..net.len()).map(|i| uf.find(i)).collect()
}

/// Returns `true` if `a` and `b` are connected over up links.
pub fn nodes_connected(net: &Network, a: NodeId, b: NodeId) -> bool {
    let labels = component_labels(net);
    labels[a.index()] == labels[b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkId, LinkState, NetworkBuilder};

    #[test]
    fn union_find_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn components_of_partitioned_network() {
        let mut net = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(2, 3, 1)
            .link(1, 2, 1)
            .build();
        assert_eq!(components(&net), 1);
        net.set_link_state(LinkId(2), LinkState::Down).unwrap();
        assert_eq!(components(&net), 2);
        assert!(nodes_connected(&net, NodeId(0), NodeId(1)));
        assert!(!nodes_connected(&net, NodeId(1), NodeId(2)));
    }

    #[test]
    fn component_labels_partition_nodes() {
        let net = NetworkBuilder::new(4).link(0, 1, 1).link(2, 3, 1).build();
        let labels = component_labels(&net);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
