//! Epoch-versioned memoization of shortest-path computations.
//!
//! D-GMC recomputes the MC topology from scratch at every event on every
//! switch, yet during convergence all switches hold byte-identical local
//! images — so nearly every Dijkstra run repeats work some switch already
//! did. [`SpfCache`] memoizes [`SpfTree`]s keyed by the network's
//! content [`digest`](Network::digest) plus the computation's sources, so
//! results are shared
//!
//! 1. across the k terminals of one KMB invocation,
//! 2. across all MCs computed on one engine, and
//! 3. across engines in the simulator whenever their images agree.
//!
//! The handle is cheaply cloneable (`Rc`-backed); clones share one store, the
//! natural shape for the single-threaded deterministic simulator. Staleness
//! is detected purely by keying: a mutated network has a new digest, so old
//! entries simply stop being hit, and the cache retires whole digest
//! generations (least-recently used first) once more than
//! [`SpfCache::GENERATIONS`] distinct digests are live. Retired trees whose
//! `Rc` is no longer shared donate their `dist`/`parent` vectors back to a
//! pool, and the Dijkstra `done`/heap arenas are reused across runs, so cache
//! misses allocate nothing steady-state.
//!
//! A digest miss is no longer always a full recompute. Each generation
//! records the link table it was built from ([`NetSnapshot`]); when a
//! request misses but a sibling generation holds the same key and differs by
//! at most [`SpfCache::MAX_REPAIR_DELTA`] link up/down/cost changes, the
//! cached tree is cloned and *repaired* in place with
//! [`spf::repair_shortest_path_tree`]'s delta-Dijkstra instead of rerunning
//! Dijkstra from scratch. Repairs are byte-identical to full recomputes (the
//! repair bails to a full run whenever it cannot guarantee that), so the
//! correctness contract below is unchanged; they are surfaced in
//! [`SpfCacheStats::repairs`]. This is what keeps the cache from collapsing
//! in WAN-style regimes where every link-cost change rotates the digest.
//!
//! Correctness contract: `cache.tree(net, r)` is byte-identical to
//! [`spf::shortest_path_tree`]`(net, r)` and `cache.forest(net, s)` to
//! [`spf::shortest_path_forest`]`(net, s)` — pinned by property tests. The
//! protocol's consensus depends on identical images yielding identical
//! trees, which content-addressed keying preserves by construction.

use crate::spf::{self, DijkstraScratch, LinkChange, RepairScratch, SpfTree};
use crate::{LinkId, Network, NodeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// Aggregate counters of one [`SpfCache`].
///
/// Everything except `miss_nanos` is a deterministic function of the
/// (deterministic) computation sequence, and therefore safe to export into
/// the metrics registry without breaking byte-identical `metrics.json` runs.
/// `miss_nanos` is wall-clock time and must stay out of serialized metrics;
/// it exists for the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpfCacheStats {
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran Dijkstra (including every request on a disabled
    /// cache). Repairs count as misses too — a miss is "the store did not
    /// answer directly", whether the work was a full run or a delta.
    pub misses: u64,
    /// Misses answered by incremental repair of a sibling generation's tree
    /// instead of a from-scratch Dijkstra (always `<= misses`).
    pub repairs: u64,
    /// Digest generations retired to bound memory.
    pub invalidations: u64,
    /// Total nodes settled by miss computations — the deterministic work
    /// metric ("how much Dijkstra actually ran").
    pub settled_nodes: u64,
    /// Wall-clock nanoseconds spent inside miss computations. Bench-only;
    /// never export into deterministic metrics.
    pub miss_nanos: u64,
}

/// One link's contribution to a [`NetSnapshot`], in [`LinkId`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkRecord {
    a: NodeId,
    b: NodeId,
    cost: u64,
    up: bool,
}

/// The link table of a network at the moment its generation was created.
///
/// Snapshots let a digest miss discover *how far* the requesting network is
/// from a generation the cache already holds. This works without any change
/// journal because images are content-addressed: two networks with the same
/// node count and the same link roster (endpoints in [`LinkId`] order)
/// assign identical link ids, so a positional diff of the link tables is
/// exactly the [`LinkChange`] delta the incremental SPF repair consumes.
#[derive(Debug)]
struct NetSnapshot {
    nodes: usize,
    links: Vec<LinkRecord>,
}

impl NetSnapshot {
    fn of(net: &Network) -> NetSnapshot {
        NetSnapshot {
            nodes: net.len(),
            links: net
                .links()
                .map(|l| LinkRecord {
                    a: l.a,
                    b: l.b,
                    cost: l.cost,
                    up: l.is_up(),
                })
                .collect(),
        }
    }

    /// The effective-cost delta from this snapshot to `net`, or `None` when
    /// the two are not delta-compatible (different node count or link
    /// roster) or the delta is too large to be worth repairing.
    fn delta_to(&self, net: &Network) -> Option<Vec<LinkChange>> {
        if self.nodes != net.len() || self.links.len() != net.link_count() {
            return None;
        }
        let mut delta = Vec::new();
        for (rec, link) in self.links.iter().zip(net.links()) {
            if (rec.a, rec.b) != (link.a, link.b) {
                return None;
            }
            let old_cost = rec.up.then_some(rec.cost);
            let new_cost = link.is_up().then_some(link.cost);
            if old_cost != new_cost {
                if delta.len() == SpfCache::MAX_REPAIR_DELTA {
                    return None;
                }
                delta.push(LinkChange {
                    link: link.id,
                    old_cost,
                    new_cost,
                });
            }
        }
        Some(delta)
    }
}

/// Memoized results for one network digest.
#[derive(Debug, Default)]
struct Generation {
    /// root -> single-source tree.
    trees: HashMap<NodeId, Rc<SpfTree>>,
    /// sorted sources -> multi-source forest.
    forests: HashMap<Box<[NodeId]>, Rc<SpfTree>>,
    /// Logical timestamp of the last lookup touching this generation.
    last_used: u64,
    /// Link table at creation, the anchor for cross-generation repairs.
    snapshot: Option<NetSnapshot>,
}

/// What a repair attempt is looking for in a sibling generation.
enum RepairKey<'a> {
    Tree(NodeId),
    Forest(&'a [NodeId]),
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    generations: HashMap<u64, Generation>,
    tick: u64,
    stats: SpfCacheStats,
    scratch: DijkstraScratch,
    repair_scratch: RepairScratch,
    dist_pool: Vec<Vec<Option<u64>>>,
    parent_pool: Vec<Vec<Option<(NodeId, LinkId)>>>,
    /// (base digest, target digest) -> link delta (or `None` = not
    /// delta-compatible). Content-addressed by the same digest-uniqueness
    /// assumption the generations rely on, so entries never go stale; the
    /// map is cleared wholesale when it grows past a small bound. This turns
    /// the O(links) snapshot diff from per-(root, event) into per-event.
    delta_memo: HashMap<(u64, u64), Option<Rc<Vec<LinkChange>>>>,
}

impl Inner {
    fn new(enabled: bool) -> Inner {
        Inner {
            enabled,
            generations: HashMap::new(),
            tick: 0,
            stats: SpfCacheStats::default(),
            scratch: DijkstraScratch::default(),
            repair_scratch: RepairScratch::default(),
            dist_pool: Vec::new(),
            parent_pool: Vec::new(),
            delta_memo: HashMap::new(),
        }
    }

    /// Runs Dijkstra with pooled arenas, charging a miss to the stats.
    fn compute(
        &mut self,
        net: &Network,
        sources: &[NodeId],
        keep_sources_rooted: bool,
        root: NodeId,
    ) -> SpfTree {
        let mut dist = self.dist_pool.pop().unwrap_or_default();
        let mut parent = self.parent_pool.pop().unwrap_or_default();
        let start = Instant::now();
        let settled = spf::run_dijkstra(
            net,
            sources,
            keep_sources_rooted,
            &mut dist,
            &mut parent,
            &mut self.scratch,
        );
        self.stats.miss_nanos += start.elapsed().as_nanos() as u64;
        self.stats.misses += 1;
        self.stats.settled_nodes += settled as u64;
        SpfTree { root, dist, parent }
    }

    /// Picks the best sibling generation to repair `key` from: smallest
    /// delta first, most recently used second, digest third — a total order
    /// independent of map iteration, so repairs are deterministic.
    fn find_repair_base(
        &mut self,
        digest: u64,
        net: &Network,
        key: &RepairKey<'_>,
    ) -> Option<(u64, Rc<Vec<LinkChange>>)> {
        let mut best: Option<(usize, u64, u64, Rc<Vec<LinkChange>>)> = None;
        let candidates: Vec<u64> = self
            .generations
            .keys()
            .copied()
            .filter(|&d| d != digest)
            .collect();
        for d in candidates {
            let generation = &self.generations[&d];
            if generation.snapshot.is_none() {
                continue;
            }
            let present = match key {
                RepairKey::Tree(root) => generation.trees.contains_key(root),
                RepairKey::Forest(sources) => generation.forests.contains_key(*sources),
            };
            if !present {
                continue;
            }
            let last_used = generation.last_used;
            let delta = match self.delta_memo.get(&(d, digest)) {
                Some(memo) => memo.clone(),
                None => {
                    let snapshot = self.generations[&d].snapshot.as_ref().expect("checked");
                    let computed = snapshot.delta_to(net).map(Rc::new);
                    if self.delta_memo.len() >= 64 {
                        self.delta_memo.clear();
                    }
                    self.delta_memo.insert((d, digest), computed.clone());
                    computed
                }
            };
            let Some(delta) = delta else {
                continue;
            };
            let rank = (delta.len(), u64::MAX - last_used, d);
            if best
                .as_ref()
                .is_none_or(|(l, r, bd, _)| rank < (*l, *r, *bd))
            {
                best = Some((rank.0, rank.1, rank.2, delta));
            }
        }
        best.map(|(_, _, d, delta)| (d, delta))
    }

    /// Answers a digest miss by delta-repairing a sibling generation's tree,
    /// when one is close enough. Charges a miss *and* a repair on success
    /// (a repair is still "the store had no direct answer"); returns `None`
    /// when no base qualifies or the repair bails, in which case the caller
    /// falls through to a full [`Inner::compute`].
    fn try_repair(&mut self, net: &Network, digest: u64, key: &RepairKey<'_>) -> Option<SpfTree> {
        let (base_digest, delta) = self.find_repair_base(digest, net, key)?;
        let generation = self.generations.get(&base_digest).expect("found above");
        let base = match key {
            RepairKey::Tree(root) => Rc::clone(generation.trees.get(root).expect("checked")),
            RepairKey::Forest(sources) => {
                Rc::clone(generation.forests.get(*sources).expect("checked"))
            }
        };
        let (sources, keep_sources_rooted, root): (&[NodeId], bool, NodeId) = match key {
            RepairKey::Tree(root) => (std::slice::from_ref(root), false, *root),
            RepairKey::Forest(sources) => (sources, true, sources[0]),
        };
        let mut dist = self.dist_pool.pop().unwrap_or_default();
        let mut parent = self.parent_pool.pop().unwrap_or_default();
        dist.clear();
        dist.extend_from_slice(&base.dist);
        parent.clear();
        parent.extend_from_slice(&base.parent);
        let start = Instant::now();
        let work = spf::repair_dijkstra(
            net,
            sources,
            keep_sources_rooted,
            delta.as_slice(),
            &mut dist,
            &mut parent,
            &mut self.repair_scratch,
        );
        self.stats.miss_nanos += start.elapsed().as_nanos() as u64;
        match work {
            Some(work) => {
                self.stats.misses += 1;
                self.stats.repairs += 1;
                self.stats.settled_nodes += work as u64;
                Some(SpfTree { root, dist, parent })
            }
            None => {
                self.dist_pool.push(dist);
                self.parent_pool.push(parent);
                None
            }
        }
    }

    /// Generation for `digest`, created on demand, with `last_used`
    /// refreshed and the repair snapshot captured on first creation.
    fn generation(&mut self, digest: u64, net: &Network) -> &mut Generation {
        self.tick += 1;
        let tick = self.tick;
        let generation = self.generations.entry(digest).or_default();
        generation.last_used = tick;
        if generation.snapshot.is_none() {
            generation.snapshot = Some(NetSnapshot::of(net));
        }
        generation
    }

    /// Retires least-recently-used generations beyond the capacity,
    /// harvesting unshared trees' vectors back into the pools.
    fn enforce_capacity(&mut self) {
        while self.generations.len() > SpfCache::GENERATIONS {
            // Min by (last_used, digest): deterministic regardless of map
            // iteration order.
            let victim = self
                .generations
                .iter()
                .map(|(&digest, generation)| (generation.last_used, digest))
                .min()
                .map(|(_, digest)| digest)
                .expect("non-empty above capacity");
            let generation = self.generations.remove(&victim).expect("just found");
            self.stats.invalidations += 1;
            let trees = generation
                .trees
                .into_values()
                .chain(generation.forests.into_values());
            for tree in trees {
                if let Some(tree) = Rc::into_inner(tree) {
                    self.dist_pool.push(tree.dist);
                    self.parent_pool.push(tree.parent);
                }
            }
        }
    }
}

/// Shared, epoch-versioned cache of [`SpfTree`] computations.
///
/// See the [module docs](self) for the design. Clones share the same store:
///
/// ```
/// use dgmc_topology::{spf, NetworkBuilder, NodeId, SpfCache};
///
/// let net = NetworkBuilder::new(3).link(0, 1, 1).link(1, 2, 1).build();
/// let cache = SpfCache::new();
/// let a = cache.tree(&net, NodeId(0));
/// let b = cache.clone().tree(&net, NodeId(0)); // hit, same allocation
/// assert!(std::rc::Rc::ptr_eq(&a, &b));
/// assert_eq!(*a, spf::shortest_path_tree(&net, NodeId(0)));
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpfCache {
    inner: Rc<RefCell<Inner>>,
}

impl Default for SpfCache {
    fn default() -> SpfCache {
        SpfCache::new()
    }
}

impl SpfCache {
    /// Maximum number of distinct network digests kept live. During
    /// convergence one digest dominates; a link event briefly adds a second
    /// while images disagree, so a small capacity suffices.
    pub const GENERATIONS: usize = 4;

    /// Largest link delta a digest miss will repair incrementally; anything
    /// wider falls back to a full Dijkstra. Link events arrive one (rarely a
    /// few) at a time in the simulator, so a small bound keeps the repair
    /// localized while still covering every realistic churn step.
    pub const MAX_REPAIR_DELTA: usize = 16;

    /// A new, enabled cache.
    pub fn new() -> SpfCache {
        SpfCache {
            inner: Rc::new(RefCell::new(Inner::new(true))),
        }
    }

    /// A cache that never memoizes: every request recomputes (still through
    /// the pooled arenas, still counted as a miss). Used as the from-scratch
    /// baseline in benches and by the uncached compatibility wrappers.
    pub fn disabled() -> SpfCache {
        SpfCache {
            inner: Rc::new(RefCell::new(Inner::new(false))),
        }
    }

    /// `true` unless built with [`SpfCache::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Single-source shortest-path tree, equal to
    /// [`spf::shortest_path_tree`]`(net, root)`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a node of `net`.
    pub fn tree(&self, net: &Network, root: NodeId) -> Rc<SpfTree> {
        assert!(net.contains_node(root), "unknown SPF root {root}");
        let inner = &mut *self.inner.borrow_mut();
        if !inner.enabled {
            return Rc::new(inner.compute(net, &[root], false, root));
        }
        let digest = net.digest();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(generation) = inner.generations.get_mut(&digest) {
            generation.last_used = tick;
            if let Some(tree) = generation.trees.get(&root) {
                let tree = Rc::clone(tree);
                inner.stats.hits += 1;
                return tree;
            }
        }
        let tree = match inner.try_repair(net, digest, &RepairKey::Tree(root)) {
            Some(repaired) => Rc::new(repaired),
            None => Rc::new(inner.compute(net, &[root], false, root)),
        };
        inner
            .generation(digest, net)
            .trees
            .insert(root, Rc::clone(&tree));
        inner.enforce_capacity();
        tree
    }

    /// Multi-source shortest-path forest, equal to
    /// [`spf::shortest_path_forest`]`(net, sources)`.
    ///
    /// The memo key is order-insensitive (the forest depends only on the
    /// source *set*), so permutations of the same sources share one entry.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an unknown node.
    pub fn forest(&self, net: &Network, sources: &[NodeId]) -> Rc<SpfTree> {
        assert!(!sources.is_empty(), "forest needs at least one source");
        for &s in sources {
            assert!(net.contains_node(s), "unknown forest source {s}");
        }
        let root = *sources.iter().min().expect("non-empty");
        let inner = &mut *self.inner.borrow_mut();
        if !inner.enabled {
            return Rc::new(inner.compute(net, sources, true, root));
        }
        let mut key: Vec<NodeId> = sources.to_vec();
        key.sort_unstable();
        key.dedup();
        let key: Box<[NodeId]> = key.into();
        let digest = net.digest();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(generation) = inner.generations.get_mut(&digest) {
            generation.last_used = tick;
            if let Some(tree) = generation.forests.get(&key) {
                let tree = Rc::clone(tree);
                inner.stats.hits += 1;
                return tree;
            }
        }
        let tree = match inner.try_repair(net, digest, &RepairKey::Forest(&key)) {
            Some(repaired) => Rc::new(repaired),
            None => Rc::new(inner.compute(net, sources, true, root)),
        };
        inner
            .generation(digest, net)
            .forests
            .insert(key, Rc::clone(&tree));
        inner.enforce_capacity();
        tree
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> SpfCacheStats {
        self.inner.borrow().stats
    }

    /// Zeroes the counters (entries stay).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = SpfCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkState, NetworkBuilder};

    fn diamond() -> Network {
        NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 4)
            .link(1, 2, 1)
            .link(1, 3, 2)
            .link(2, 3, 1)
            .build()
    }

    #[test]
    fn tree_hits_and_matches_from_scratch() {
        let net = diamond();
        let cache = SpfCache::new();
        let first = cache.tree(&net, NodeId(0));
        assert_eq!(*first, spf::shortest_path_tree(&net, NodeId(0)));
        let second = cache.tree(&net, NodeId(0));
        assert!(Rc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.settled_nodes, 4);
        // A clone shares the store.
        cache.clone().tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn mutation_changes_key_and_forces_recompute() {
        let mut net = diamond();
        let cache = SpfCache::new();
        cache.tree(&net, NodeId(0));
        net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        let detour = cache.tree(&net, NodeId(0));
        assert_eq!(*detour, spf::shortest_path_tree(&net, NodeId(0)));
        assert_eq!(detour.cost_to(NodeId(1)), Some(5));
        assert_eq!(cache.stats().misses, 2);
        // Repairing the link restores the original digest: old entry hits.
        net.set_link_state(LinkId(0), LinkState::Up).unwrap();
        cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn identical_content_shares_across_instances() {
        // Two independently built but identical networks (the cross-engine
        // shared-image case) reuse one entry.
        let a = diamond();
        let b = diamond();
        let cache = SpfCache::new();
        let ta = cache.tree(&a, NodeId(2));
        let tb = cache.tree(&b, NodeId(2));
        assert!(Rc::ptr_eq(&ta, &tb));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn forest_key_is_order_insensitive() {
        let net = diamond();
        let cache = SpfCache::new();
        let f1 = cache.forest(&net, &[NodeId(3), NodeId(0)]);
        let f2 = cache.forest(&net, &[NodeId(0), NodeId(3)]);
        assert!(Rc::ptr_eq(&f1, &f2));
        assert_eq!(
            *f1,
            spf::shortest_path_forest(&net, &[NodeId(3), NodeId(0)])
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn disabled_cache_never_memoizes_but_stays_equal() {
        let net = diamond();
        let cache = SpfCache::disabled();
        assert!(!cache.is_enabled());
        let a = cache.tree(&net, NodeId(1));
        let b = cache.tree(&net, NodeId(1));
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
    }

    #[test]
    fn generations_are_capped_and_counted() {
        let mut net = diamond();
        let cache = SpfCache::new();
        // Each additional downed link is a distinct digest: 6 generations
        // (all-up plus five prefixes) against a capacity of 4.
        cache.tree(&net, NodeId(0));
        for link in 0..5 {
            net.set_link_state(LinkId(link), LinkState::Down).unwrap();
            cache.tree(&net, NodeId(0));
        }
        assert_eq!(cache.stats().invalidations, 2);
        // The still-live digest keeps hitting.
        let before = cache.stats().hits;
        cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    fn digest_miss_with_known_sibling_repairs_instead_of_recomputing() {
        let mut net = diamond();
        let cache = SpfCache::new();
        cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().repairs, 0);
        // A cost change rotates the digest; the old generation is one link
        // away, so the miss is answered by delta repair.
        net.set_link_cost(LinkId(0), 7).unwrap();
        let repaired = cache.tree(&net, NodeId(0));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.repairs), (2, 1));
        assert_eq!(*repaired, spf::shortest_path_tree(&net, NodeId(0)));
        // The repaired generation has its own snapshot, so a further change
        // repairs again (possibly from either sibling).
        net.set_link_state(LinkId(3), LinkState::Down).unwrap();
        let again = cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().repairs, 2);
        assert_eq!(*again, spf::shortest_path_tree(&net, NodeId(0)));
    }

    #[test]
    fn forest_misses_repair_too() {
        let mut net = diamond();
        let cache = SpfCache::new();
        let sources = [NodeId(0), NodeId(3)];
        cache.forest(&net, &sources);
        net.set_link_cost(LinkId(4), 9).unwrap();
        let repaired = cache.forest(&net, &sources);
        assert_eq!(cache.stats().repairs, 1);
        assert_eq!(*repaired, spf::shortest_path_forest(&net, &sources));
        // A tree request for the same digest still computes from scratch:
        // there is no tree entry to repair from.
        cache.tree(&net, NodeId(1));
        assert_eq!(cache.stats().repairs, 1);
    }

    #[test]
    fn incompatible_rosters_fall_back_to_full_recompute() {
        // Same node count, different link roster: snapshots are not
        // delta-compatible and the miss must recompute, not repair.
        let a = diamond();
        let b = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 3, 4)
            .link(1, 2, 1)
            .link(1, 3, 2)
            .link(2, 3, 1)
            .build();
        let cache = SpfCache::new();
        cache.tree(&a, NodeId(0));
        let fresh = cache.tree(&b, NodeId(0));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.repairs), (2, 0));
        assert_eq!(*fresh, spf::shortest_path_tree(&b, NodeId(0)));
    }

    #[test]
    fn repair_equals_full_recompute_under_heavy_churn() {
        // Walk a long mutation sequence; every miss (repair or not) must
        // stay byte-identical to from-scratch, and repairs must dominate.
        let mut net = diamond();
        let cache = SpfCache::new();
        for step in 0u64..40 {
            let link = LinkId((step % 5) as u32);
            if step % 7 == 3 {
                let flip = if net.link(link).unwrap().is_up() {
                    LinkState::Down
                } else {
                    LinkState::Up
                };
                net.set_link_state(link, flip).unwrap();
            } else {
                net.set_link_cost(link, 1 + (step * 3) % 11).unwrap();
            }
            for root in [NodeId(0), NodeId(2)] {
                let got = cache.tree(&net, root);
                assert_eq!(*got, spf::shortest_path_tree(&net, root), "step {step}");
            }
        }
        let stats = cache.stats();
        assert!(stats.repairs > 0, "churn never repaired: {stats:?}");
        assert!(stats.repairs <= stats.misses);
    }

    #[test]
    #[should_panic(expected = "unknown SPF root")]
    fn tree_rejects_unknown_root() {
        let cache = SpfCache::new();
        cache.tree(&diamond(), NodeId(17));
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn forest_rejects_empty_sources() {
        let cache = SpfCache::new();
        cache.forest(&diamond(), &[]);
    }
}
