//! Epoch-versioned memoization of shortest-path computations.
//!
//! D-GMC recomputes the MC topology from scratch at every event on every
//! switch, yet during convergence all switches hold byte-identical local
//! images — so nearly every Dijkstra run repeats work some switch already
//! did. [`SpfCache`] memoizes [`SpfTree`]s keyed by the network's
//! content [`digest`](Network::digest) plus the computation's sources, so
//! results are shared
//!
//! 1. across the k terminals of one KMB invocation,
//! 2. across all MCs computed on one engine, and
//! 3. across engines in the simulator whenever their images agree.
//!
//! The handle is cheaply cloneable (`Rc`-backed); clones share one store, the
//! natural shape for the single-threaded deterministic simulator. Staleness
//! is detected purely by keying: a mutated network has a new digest, so old
//! entries simply stop being hit, and the cache retires whole digest
//! generations (least-recently used first) once more than
//! [`SpfCache::GENERATIONS`] distinct digests are live. Retired trees whose
//! `Rc` is no longer shared donate their `dist`/`parent` vectors back to a
//! pool, and the Dijkstra `done`/heap arenas are reused across runs, so cache
//! misses allocate nothing steady-state.
//!
//! Correctness contract: `cache.tree(net, r)` is byte-identical to
//! [`spf::shortest_path_tree`]`(net, r)` and `cache.forest(net, s)` to
//! [`spf::shortest_path_forest`]`(net, s)` — pinned by property tests. The
//! protocol's consensus depends on identical images yielding identical
//! trees, which content-addressed keying preserves by construction.

use crate::spf::{self, DijkstraScratch, SpfTree};
use crate::{LinkId, Network, NodeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// Aggregate counters of one [`SpfCache`].
///
/// Everything except `miss_nanos` is a deterministic function of the
/// (deterministic) computation sequence, and therefore safe to export into
/// the metrics registry without breaking byte-identical `metrics.json` runs.
/// `miss_nanos` is wall-clock time and must stay out of serialized metrics;
/// it exists for the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpfCacheStats {
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests that ran Dijkstra (including every request on a disabled
    /// cache).
    pub misses: u64,
    /// Digest generations retired to bound memory.
    pub invalidations: u64,
    /// Total nodes settled by miss computations — the deterministic work
    /// metric ("how much Dijkstra actually ran").
    pub settled_nodes: u64,
    /// Wall-clock nanoseconds spent inside miss computations. Bench-only;
    /// never export into deterministic metrics.
    pub miss_nanos: u64,
}

/// Memoized results for one network digest.
#[derive(Debug, Default)]
struct Generation {
    /// root -> single-source tree.
    trees: HashMap<NodeId, Rc<SpfTree>>,
    /// sorted sources -> multi-source forest.
    forests: HashMap<Box<[NodeId]>, Rc<SpfTree>>,
    /// Logical timestamp of the last lookup touching this generation.
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    generations: HashMap<u64, Generation>,
    tick: u64,
    stats: SpfCacheStats,
    scratch: DijkstraScratch,
    dist_pool: Vec<Vec<Option<u64>>>,
    parent_pool: Vec<Vec<Option<(NodeId, LinkId)>>>,
}

impl Inner {
    fn new(enabled: bool) -> Inner {
        Inner {
            enabled,
            generations: HashMap::new(),
            tick: 0,
            stats: SpfCacheStats::default(),
            scratch: DijkstraScratch::default(),
            dist_pool: Vec::new(),
            parent_pool: Vec::new(),
        }
    }

    /// Runs Dijkstra with pooled arenas, charging a miss to the stats.
    fn compute(
        &mut self,
        net: &Network,
        sources: &[NodeId],
        keep_sources_rooted: bool,
        root: NodeId,
    ) -> SpfTree {
        let mut dist = self.dist_pool.pop().unwrap_or_default();
        let mut parent = self.parent_pool.pop().unwrap_or_default();
        let start = Instant::now();
        let settled = spf::run_dijkstra(
            net,
            sources,
            keep_sources_rooted,
            &mut dist,
            &mut parent,
            &mut self.scratch,
        );
        self.stats.miss_nanos += start.elapsed().as_nanos() as u64;
        self.stats.misses += 1;
        self.stats.settled_nodes += settled as u64;
        SpfTree { root, dist, parent }
    }

    /// Generation for `digest`, created on demand, with `last_used` refreshed.
    fn generation(&mut self, digest: u64) -> &mut Generation {
        self.tick += 1;
        let tick = self.tick;
        let generation = self.generations.entry(digest).or_default();
        generation.last_used = tick;
        generation
    }

    /// Retires least-recently-used generations beyond the capacity,
    /// harvesting unshared trees' vectors back into the pools.
    fn enforce_capacity(&mut self) {
        while self.generations.len() > SpfCache::GENERATIONS {
            // Min by (last_used, digest): deterministic regardless of map
            // iteration order.
            let victim = self
                .generations
                .iter()
                .map(|(&digest, generation)| (generation.last_used, digest))
                .min()
                .map(|(_, digest)| digest)
                .expect("non-empty above capacity");
            let generation = self.generations.remove(&victim).expect("just found");
            self.stats.invalidations += 1;
            let trees = generation
                .trees
                .into_values()
                .chain(generation.forests.into_values());
            for tree in trees {
                if let Some(tree) = Rc::into_inner(tree) {
                    self.dist_pool.push(tree.dist);
                    self.parent_pool.push(tree.parent);
                }
            }
        }
    }
}

/// Shared, epoch-versioned cache of [`SpfTree`] computations.
///
/// See the [module docs](self) for the design. Clones share the same store:
///
/// ```
/// use dgmc_topology::{spf, NetworkBuilder, NodeId, SpfCache};
///
/// let net = NetworkBuilder::new(3).link(0, 1, 1).link(1, 2, 1).build();
/// let cache = SpfCache::new();
/// let a = cache.tree(&net, NodeId(0));
/// let b = cache.clone().tree(&net, NodeId(0)); // hit, same allocation
/// assert!(std::rc::Rc::ptr_eq(&a, &b));
/// assert_eq!(*a, spf::shortest_path_tree(&net, NodeId(0)));
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpfCache {
    inner: Rc<RefCell<Inner>>,
}

impl Default for SpfCache {
    fn default() -> SpfCache {
        SpfCache::new()
    }
}

impl SpfCache {
    /// Maximum number of distinct network digests kept live. During
    /// convergence one digest dominates; a link event briefly adds a second
    /// while images disagree, so a small capacity suffices.
    pub const GENERATIONS: usize = 4;

    /// A new, enabled cache.
    pub fn new() -> SpfCache {
        SpfCache {
            inner: Rc::new(RefCell::new(Inner::new(true))),
        }
    }

    /// A cache that never memoizes: every request recomputes (still through
    /// the pooled arenas, still counted as a miss). Used as the from-scratch
    /// baseline in benches and by the uncached compatibility wrappers.
    pub fn disabled() -> SpfCache {
        SpfCache {
            inner: Rc::new(RefCell::new(Inner::new(false))),
        }
    }

    /// `true` unless built with [`SpfCache::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Single-source shortest-path tree, equal to
    /// [`spf::shortest_path_tree`]`(net, root)`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a node of `net`.
    pub fn tree(&self, net: &Network, root: NodeId) -> Rc<SpfTree> {
        assert!(net.contains_node(root), "unknown SPF root {root}");
        let inner = &mut *self.inner.borrow_mut();
        if !inner.enabled {
            return Rc::new(inner.compute(net, &[root], false, root));
        }
        let digest = net.digest();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(generation) = inner.generations.get_mut(&digest) {
            generation.last_used = tick;
            if let Some(tree) = generation.trees.get(&root) {
                let tree = Rc::clone(tree);
                inner.stats.hits += 1;
                return tree;
            }
        }
        let tree = Rc::new(inner.compute(net, &[root], false, root));
        inner
            .generation(digest)
            .trees
            .insert(root, Rc::clone(&tree));
        inner.enforce_capacity();
        tree
    }

    /// Multi-source shortest-path forest, equal to
    /// [`spf::shortest_path_forest`]`(net, sources)`.
    ///
    /// The memo key is order-insensitive (the forest depends only on the
    /// source *set*), so permutations of the same sources share one entry.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an unknown node.
    pub fn forest(&self, net: &Network, sources: &[NodeId]) -> Rc<SpfTree> {
        assert!(!sources.is_empty(), "forest needs at least one source");
        for &s in sources {
            assert!(net.contains_node(s), "unknown forest source {s}");
        }
        let root = *sources.iter().min().expect("non-empty");
        let inner = &mut *self.inner.borrow_mut();
        if !inner.enabled {
            return Rc::new(inner.compute(net, sources, true, root));
        }
        let mut key: Vec<NodeId> = sources.to_vec();
        key.sort_unstable();
        key.dedup();
        let key: Box<[NodeId]> = key.into();
        let digest = net.digest();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(generation) = inner.generations.get_mut(&digest) {
            generation.last_used = tick;
            if let Some(tree) = generation.forests.get(&key) {
                let tree = Rc::clone(tree);
                inner.stats.hits += 1;
                return tree;
            }
        }
        let tree = Rc::new(inner.compute(net, sources, true, root));
        inner
            .generation(digest)
            .forests
            .insert(key, Rc::clone(&tree));
        inner.enforce_capacity();
        tree
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> SpfCacheStats {
        self.inner.borrow().stats
    }

    /// Zeroes the counters (entries stay).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = SpfCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkState, NetworkBuilder};

    fn diamond() -> Network {
        NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 4)
            .link(1, 2, 1)
            .link(1, 3, 2)
            .link(2, 3, 1)
            .build()
    }

    #[test]
    fn tree_hits_and_matches_from_scratch() {
        let net = diamond();
        let cache = SpfCache::new();
        let first = cache.tree(&net, NodeId(0));
        assert_eq!(*first, spf::shortest_path_tree(&net, NodeId(0)));
        let second = cache.tree(&net, NodeId(0));
        assert!(Rc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.settled_nodes, 4);
        // A clone shares the store.
        cache.clone().tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn mutation_changes_key_and_forces_recompute() {
        let mut net = diamond();
        let cache = SpfCache::new();
        cache.tree(&net, NodeId(0));
        net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        let detour = cache.tree(&net, NodeId(0));
        assert_eq!(*detour, spf::shortest_path_tree(&net, NodeId(0)));
        assert_eq!(detour.cost_to(NodeId(1)), Some(5));
        assert_eq!(cache.stats().misses, 2);
        // Repairing the link restores the original digest: old entry hits.
        net.set_link_state(LinkId(0), LinkState::Up).unwrap();
        cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn identical_content_shares_across_instances() {
        // Two independently built but identical networks (the cross-engine
        // shared-image case) reuse one entry.
        let a = diamond();
        let b = diamond();
        let cache = SpfCache::new();
        let ta = cache.tree(&a, NodeId(2));
        let tb = cache.tree(&b, NodeId(2));
        assert!(Rc::ptr_eq(&ta, &tb));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn forest_key_is_order_insensitive() {
        let net = diamond();
        let cache = SpfCache::new();
        let f1 = cache.forest(&net, &[NodeId(3), NodeId(0)]);
        let f2 = cache.forest(&net, &[NodeId(0), NodeId(3)]);
        assert!(Rc::ptr_eq(&f1, &f2));
        assert_eq!(
            *f1,
            spf::shortest_path_forest(&net, &[NodeId(3), NodeId(0)])
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn disabled_cache_never_memoizes_but_stays_equal() {
        let net = diamond();
        let cache = SpfCache::disabled();
        assert!(!cache.is_enabled());
        let a = cache.tree(&net, NodeId(1));
        let b = cache.tree(&net, NodeId(1));
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
    }

    #[test]
    fn generations_are_capped_and_counted() {
        let mut net = diamond();
        let cache = SpfCache::new();
        // Each additional downed link is a distinct digest: 6 generations
        // (all-up plus five prefixes) against a capacity of 4.
        cache.tree(&net, NodeId(0));
        for link in 0..5 {
            net.set_link_state(LinkId(link), LinkState::Down).unwrap();
            cache.tree(&net, NodeId(0));
        }
        assert_eq!(cache.stats().invalidations, 2);
        // The still-live digest keeps hitting.
        let before = cache.stats().hits;
        cache.tree(&net, NodeId(0));
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    #[should_panic(expected = "unknown SPF root")]
    fn tree_rejects_unknown_root() {
        let cache = SpfCache::new();
        cache.tree(&diamond(), NodeId(17));
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn forest_rejects_empty_sources() {
        let cache = SpfCache::new();
        cache.forest(&diamond(), &[]);
    }
}
