//! Shortest-path machinery: Dijkstra by link cost and BFS by hop count.
//!
//! Both algorithms are deterministic: ties are broken by node id, which the
//! D-GMC protocol relies on so that switches computing from identical local
//! images propose identical topologies (see DESIGN.md §3).

use crate::{LinkId, Network, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpfTree {
    /// The root of the computation.
    pub root: NodeId,
    /// `dist[v]` is the least cost from the root to `v`, or `None` if
    /// unreachable.
    pub dist: Vec<Option<u64>>,
    /// `parent[v]` is the predecessor of `v` on its shortest path together
    /// with the link used, or `None` for the root and unreachable nodes.
    pub parent: Vec<Option<(NodeId, LinkId)>>,
}

impl SpfTree {
    /// Cost of the shortest path to `v`, if reachable.
    pub fn cost_to(&self, v: NodeId) -> Option<u64> {
        self.dist.get(v.index()).copied().flatten()
    }

    /// Returns `true` if `v` is reachable from the root.
    pub fn reaches(&self, v: NodeId) -> bool {
        self.cost_to(v).is_some()
    }

    /// Reconstructs the node path from the root to `v` (inclusive).
    ///
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert!(
            self.parent[path[0].index()].is_none(),
            "path must start at a root/source"
        );
        Some(path)
    }

    /// Reconstructs the link path from the root to `v`.
    ///
    /// Returns `None` if `v` is unreachable; the root maps to an empty path.
    pub fn links_to(&self, v: NodeId) -> Option<Vec<LinkId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut links = Vec::new();
        let mut cur = v;
        while let Some((p, l)) = self.parent[cur.index()] {
            links.push(l);
            cur = p;
        }
        links.reverse();
        Some(links)
    }

    /// The first hop (neighbor of the root) on the path to `v`, if any.
    ///
    /// Returns `None` for the root itself and for unreachable nodes.
    pub fn first_hop(&self, v: NodeId) -> Option<NodeId> {
        let path = self.path_to(v)?;
        path.get(1).copied()
    }
}

/// Reusable Dijkstra arenas so repeated runs allocate nothing steady-state.
///
/// The output `dist`/`parent` vectors are owned by the caller (they end up
/// inside the returned [`SpfTree`]); the `done` bitmap and the binary heap
/// live here and are recycled across runs. Used by [`crate::SpfCache`].
#[derive(Debug, Default)]
pub(crate) struct DijkstraScratch {
    done: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
}

/// Core deterministic Dijkstra shared by [`shortest_path_tree`],
/// [`shortest_path_forest`] and the cache.
///
/// Every node in `sources` starts at distance 0. `keep_sources_rooted`
/// selects the forest tie-break (a source whose parent is still `None` keeps
/// it on a cost tie) versus the historical tree behavior. Clears and fills
/// `dist`/`parent` in place; returns the number of settled nodes — the
/// deterministic work metric recorded by the cache.
pub(crate) fn run_dijkstra(
    net: &Network,
    sources: &[NodeId],
    keep_sources_rooted: bool,
    dist: &mut Vec<Option<u64>>,
    parent: &mut Vec<Option<(NodeId, LinkId)>>,
    scratch: &mut DijkstraScratch,
) -> usize {
    let n = net.len();
    dist.clear();
    dist.resize(n, None);
    parent.clear();
    parent.resize(n, None);
    scratch.done.clear();
    scratch.done.resize(n, false);
    scratch.heap.clear();
    let done = &mut scratch.done;
    let heap = &mut scratch.heap;
    // (cost, node) min-heap; NodeId tie-break comes from the tuple ordering.
    for &s in sources {
        dist[s.index()] = Some(0);
        heap.push(Reverse((0, s)));
    }
    let mut settled = 0;
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        settled += 1;
        for (v, link) in net.neighbors(u) {
            let nd = d + link.cost;
            let better = match dist[v.index()] {
                None => true,
                Some(old) if nd < old => true,
                Some(old) if nd == old => {
                    // Deterministic tie-break: prefer smaller (parent, link).
                    match parent[v.index()] {
                        Some((pu, pl)) => (u, link.id) < (pu, pl),
                        None => !keep_sources_rooted,
                    }
                }
                _ => false,
            };
            if better {
                dist[v.index()] = Some(nd);
                parent[v.index()] = Some((u, link.id));
                if !done[v.index()] {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    settled
}

/// Computes the deterministic Dijkstra shortest-path tree rooted at `root`.
///
/// Only up links participate. Cost ties are broken toward the smaller
/// predecessor node id and then the smaller link id, so two switches with the
/// same network image compute identical trees.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn shortest_path_tree(net: &Network, root: NodeId) -> SpfTree {
    assert!(net.contains_node(root), "unknown SPF root {root}");
    let mut dist = Vec::new();
    let mut parent = Vec::new();
    let mut scratch = DijkstraScratch::default();
    run_dijkstra(net, &[root], false, &mut dist, &mut parent, &mut scratch);
    SpfTree { root, dist, parent }
}

/// Computes the deterministic multi-source Dijkstra forest of `sources`.
///
/// Every source has distance 0; `parent` edges lead back toward the nearest
/// source. Used by Steiner heuristics that grow a tree toward the closest
/// terminal. Tie-breaking matches [`shortest_path_tree`].
///
/// The returned tree's `root` field is the smallest source id.
///
/// # Panics
///
/// Panics if `sources` is empty or contains an unknown node.
pub fn shortest_path_forest(net: &Network, sources: &[NodeId]) -> SpfTree {
    assert!(!sources.is_empty(), "forest needs at least one source");
    for &s in sources {
        assert!(net.contains_node(s), "unknown forest source {s}");
    }
    let mut dist = Vec::new();
    let mut parent = Vec::new();
    let mut scratch = DijkstraScratch::default();
    run_dijkstra(net, sources, true, &mut dist, &mut parent, &mut scratch);
    let root = *sources.iter().min().expect("non-empty");
    SpfTree { root, dist, parent }
}

/// One link's effective-cost transition between two network contents.
///
/// The *effective cost* of a link is `Some(cost)` while it is up and `None`
/// while it is down — a down link and an absent link are indistinguishable
/// to Dijkstra. A `LinkChange` describes a single link's old and new
/// effective cost; a batch of them is the delta between two images that
/// share the same node count and link roster (same [`LinkId`] assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkChange {
    /// The link that changed.
    pub link: LinkId,
    /// Effective cost before the change (`None` = down).
    pub old_cost: Option<u64>,
    /// Effective cost after the change (`None` = down).
    pub new_cost: Option<u64>,
}

/// `a < b` in the extended cost order where `None` is +infinity.
fn cost_lt(a: u64, b: Option<u64>) -> bool {
    match b {
        Some(b) => a < b,
        None => true,
    }
}

/// Reusable arenas for [`repair_dijkstra`], recycled across repairs.
#[derive(Debug, Default)]
pub(crate) struct RepairScratch {
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// Subtree-walk state: 0 unknown, 1 affected, 2 unaffected, 3 settled.
    state: Vec<u8>,
    /// Pre-repair distances of every node whose label was modified.
    saved: Vec<(NodeId, Option<u64>)>,
    saved_mark: Vec<bool>,
    /// Nodes whose parent must be recanonicalized, deduplicated by `p_mark`.
    recanon: Vec<NodeId>,
    p_mark: Vec<bool>,
    /// Parent-chain walk buffer.
    path: Vec<NodeId>,
    affected: Vec<NodeId>,
}

/// Repairs a Dijkstra labeling in place after a batch of link changes —
/// the delta counterpart of [`run_dijkstra`], and **exactly** equal to it.
///
/// `dist`/`parent` must hold the final labeling of `run_dijkstra` over the
/// *pre-change* network (same `sources`, same `keep_sources_rooted`), and
/// `net` must be the post-change network: for every change, the link's
/// current effective cost must equal `new_cost` and its effective cost in
/// the pre-change image must have been `old_cost`. `sources` must be sorted.
///
/// Returns `Some(work)` (a deterministic settled/retouched node count, the
/// analogue of `run_dijkstra`'s return) on success, in which case the
/// labeling is byte-identical to a from-scratch recomputation — including
/// the node-id tie-breaks of DESIGN.md §3. Returns `None` when the delta
/// cannot be applied (unknown link, zero-cost links anywhere in the image,
/// or an inconsistent input labeling); the labeling is then unspecified and
/// the caller must recompute from scratch.
///
/// # Algorithm
///
/// Three localized phases, none of which touches nodes outside the delta's
/// influence region:
///
/// 1. **Worsenings.** A cost increase / link-down only moves distances of
///    nodes whose shortest-path tree chain crosses the changed link, i.e.
///    the subtree hanging under it. Those subtrees are collected by
///    amortized-O(1) parent-chain walks, their labels reset, and Dijkstra
///    re-runs *inside the affected set only*, seeded from the unaffected
///    frontier (whose labels are still valid upper bounds).
/// 2. **Improvements.** A cost decrease / link-up can only lower labels, so
///    decrease-only relaxation seeded at the improved links' endpoints and
///    run to fixpoint in heap order converges to the exact distance field
///    (labels start as upper bounds; at fixpoint no edge is relaxable, which
///    pins every label to the true distance).
/// 3. **Recanonicalization.** `run_dijkstra`'s final parent of a non-source
///    node `v` is the minimum `(u, link)` over up-neighbors with
///    `dist[u] + cost == dist[v]` (every neighbor relaxes `v` after
///    settling, so the tie-break sees all equal-sum candidates); sources
///    keep `None`. That makes the parent a pure function of the distance
///    field, recomputable locally for the nodes whose candidate sets could
///    have changed: retouched nodes, their neighbors, and the endpoints of
///    every changed link. Zero-cost links would break the "sources keep
///    `None`" half (a zero-cost cycle through a source can capture its
///    parent), which is why they force the `None` bailout above.
pub(crate) fn repair_dijkstra(
    net: &Network,
    sources: &[NodeId],
    keep_sources_rooted: bool,
    changes: &[LinkChange],
    dist: &mut [Option<u64>],
    parent: &mut [Option<(NodeId, LinkId)>],
    scratch: &mut RepairScratch,
) -> Option<usize> {
    let n = net.len();
    if dist.len() != n || parent.len() != n || sources.is_empty() {
        return None;
    }
    if sources.iter().any(|&s| !net.contains_node(s)) {
        return None;
    }
    // Validate the delta against the post-change image and drop no-ops
    // (e.g. a cost change on a down link: the digest moved, Dijkstra's
    // input did not). A delta must mention each link at most once.
    let mut worsened: Vec<LinkChange> = Vec::new();
    let mut improved: Vec<LinkChange> = Vec::new();
    for (i, c) in changes.iter().enumerate() {
        if changes[..i].iter().any(|prev| prev.link == c.link) {
            return None;
        }
    }
    for &c in changes {
        let link = net.link(c.link)?;
        if link.is_up().then_some(link.cost) != c.new_cost {
            return None;
        }
        if c.old_cost == Some(0) || c.new_cost == Some(0) {
            return None;
        }
        match (c.old_cost, c.new_cost) {
            (a, b) if a == b => {}
            (Some(a), Some(b)) if b < a => improved.push(c),
            (None, Some(_)) => improved.push(c),
            _ => worsened.push(c),
        }
    }
    if worsened.is_empty() && improved.is_empty() {
        return Some(0);
    }
    // Zero-cost up links anywhere break the canonical-parent argument.
    if net.up_links().any(|l| l.cost == 0) {
        return None;
    }

    scratch.heap.clear();
    scratch.saved.clear();
    scratch.saved_mark.clear();
    scratch.saved_mark.resize(n, false);
    scratch.recanon.clear();
    scratch.p_mark.clear();
    scratch.p_mark.resize(n, false);
    scratch.affected.clear();
    let mut work = 0usize;

    // Phase 1: worsened links that carry a tree/forest parent edge orphan
    // the subtree below them; everything else leaves distances alone.
    let mut orphan_roots: Vec<NodeId> = Vec::new();
    for c in &worsened {
        let link = net.link(c.link).expect("validated above");
        for v in [link.a, link.b] {
            if parent[v.index()] == Some((link.other(v), c.link)) {
                orphan_roots.push(v);
            }
        }
    }
    if !orphan_roots.is_empty() {
        let state = &mut scratch.state;
        state.clear();
        state.resize(n, 0u8);
        for &s in sources {
            state[s.index()] = 2;
        }
        for &r in &orphan_roots {
            if state[r.index()] == 2 {
                // A source's parent must be None; the input is inconsistent.
                return None;
            }
            state[r.index()] = 1;
            scratch.affected.push(r);
        }
        // Label every reachable node by walking its parent chain up to the
        // first already-labeled node (or a parent-less root). Each node is
        // walked at most once across all iterations.
        for v in net.nodes() {
            if dist[v.index()].is_none() || state[v.index()] != 0 {
                continue;
            }
            scratch.path.clear();
            let mut cur = v;
            let label = loop {
                if state[cur.index()] != 0 {
                    break state[cur.index()];
                }
                scratch.path.push(cur);
                if scratch.path.len() > n {
                    return None; // parent cycle: corrupt input
                }
                match parent[cur.index()] {
                    None => break 2,
                    Some((p, _)) => cur = p,
                }
            };
            let label = if label == 1 { 1 } else { 2 };
            for &u in &scratch.path {
                state[u.index()] = label;
                if label == 1 {
                    scratch.affected.push(u);
                }
            }
        }
        // Reset the affected set and re-run Dijkstra inside it, seeded from
        // the unaffected frontier (post-change costs throughout).
        for &v in &scratch.affected {
            if !scratch.saved_mark[v.index()] {
                scratch.saved_mark[v.index()] = true;
                scratch.saved.push((v, dist[v.index()]));
            }
            dist[v.index()] = None;
        }
        for &v in &scratch.affected {
            for (u, link) in net.neighbors(v) {
                if state[u.index()] != 1 && state[u.index()] != 3 {
                    if let Some(du) = dist[u.index()] {
                        let cand = du + link.cost;
                        if cost_lt(cand, dist[v.index()]) {
                            dist[v.index()] = Some(cand);
                            parent[v.index()] = Some((u, link.id));
                            scratch.heap.push(Reverse((cand, v)));
                        }
                    }
                }
            }
        }
        while let Some(Reverse((d, v))) = scratch.heap.pop() {
            if state[v.index()] != 1 || dist[v.index()] != Some(d) {
                continue;
            }
            state[v.index()] = 3;
            work += 1;
            for (w, link) in net.neighbors(v) {
                if state[w.index()] == 1 {
                    let nd = d + link.cost;
                    if cost_lt(nd, dist[w.index()]) {
                        dist[w.index()] = Some(nd);
                        parent[w.index()] = Some((v, link.id));
                        scratch.heap.push(Reverse((nd, w)));
                    }
                }
            }
        }
    }

    // Phase 2: improvements propagate as decrease-only relaxation to
    // fixpoint in heap order (labels are upper bounds at this point, so the
    // fixpoint is the exact distance field). Besides the improved links'
    // endpoints, every phase-1 node whose label *dropped* below its old
    // value must be re-examined: phase 1 relaxes with post-change costs, so
    // an improvement entering the orphaned region through its boundary is
    // already folded into those labels, and its consequences for the
    // unaffected remainder of the graph would otherwise go unexplored.
    scratch.heap.clear();
    for &(v, old) in &scratch.saved {
        if let Some(nd) = dist[v.index()] {
            if cost_lt(nd, old) {
                scratch.heap.push(Reverse((nd, v)));
            }
        }
    }
    let save = |v: NodeId,
                saved: &mut Vec<(NodeId, Option<u64>)>,
                mark: &mut Vec<bool>,
                old: Option<u64>| {
        if !mark[v.index()] {
            mark[v.index()] = true;
            saved.push((v, old));
        }
    };
    for c in &improved {
        let link = net.link(c.link).expect("validated above");
        let cost = c.new_cost.expect("an improvement ends up");
        for (x, y) in [(link.a, link.b), (link.b, link.a)] {
            if let Some(dx) = dist[x.index()] {
                let nd = dx + cost;
                if cost_lt(nd, dist[y.index()]) {
                    save(
                        y,
                        &mut scratch.saved,
                        &mut scratch.saved_mark,
                        dist[y.index()],
                    );
                    dist[y.index()] = Some(nd);
                    parent[y.index()] = Some((x, c.link));
                    scratch.heap.push(Reverse((nd, y)));
                }
            }
        }
    }
    while let Some(Reverse((d, v))) = scratch.heap.pop() {
        if dist[v.index()] != Some(d) {
            continue;
        }
        work += 1;
        for (w, link) in net.neighbors(v) {
            let nd = d + link.cost;
            if cost_lt(nd, dist[w.index()]) {
                save(
                    w,
                    &mut scratch.saved,
                    &mut scratch.saved_mark,
                    dist[w.index()],
                );
                dist[w.index()] = Some(nd);
                parent[w.index()] = Some((v, link.id));
                scratch.heap.push(Reverse((nd, w)));
            }
        }
    }

    // Phase 3: recanonicalize parents wherever a candidate set could have
    // changed: every retouched node, the neighbors of nodes whose distance
    // actually moved, and the endpoints of every changed link.
    let add = |v: NodeId, recanon: &mut Vec<NodeId>, mark: &mut Vec<bool>| {
        if !mark[v.index()] {
            mark[v.index()] = true;
            recanon.push(v);
        }
    };
    for i in 0..scratch.saved.len() {
        let (v, old) = scratch.saved[i];
        add(v, &mut scratch.recanon, &mut scratch.p_mark);
        if dist[v.index()] != old {
            for (u, _) in net.neighbors(v) {
                add(u, &mut scratch.recanon, &mut scratch.p_mark);
            }
        }
    }
    for c in worsened.iter().chain(improved.iter()) {
        let link = net.link(c.link).expect("validated above");
        add(link.a, &mut scratch.recanon, &mut scratch.p_mark);
        add(link.b, &mut scratch.recanon, &mut scratch.p_mark);
    }
    let _ = keep_sources_rooted; // parents of sources are None either way
    for i in 0..scratch.recanon.len() {
        let v = scratch.recanon[i];
        work += 1;
        let canonical = match dist[v.index()] {
            None => None,
            // With all costs >= 1 a source never has an equal-sum candidate,
            // so its parent stays None in both tie-break modes.
            Some(_) if sources.binary_search(&v).is_ok() => None,
            Some(dv) => {
                let mut best: Option<(NodeId, LinkId)> = None;
                for (u, link) in net.neighbors(v) {
                    if let Some(du) = dist[u.index()] {
                        if du.checked_add(link.cost) == Some(dv) {
                            let cand = (u, link.id);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                }
                // A reachable non-source without a candidate means the
                // input labeling was inconsistent with `net`.
                best?;
                best
            }
        };
        parent[v.index()] = canonical;
    }
    Some(work)
}

/// Repairs `tree` in place so it equals
/// [`shortest_path_tree`]`(net, tree.root)` after the link delta `changes`.
///
/// `tree` must be the (exact) tree of the pre-change image; see
/// [`LinkChange`] for the delta contract. On `Some(work)` the repair is
/// byte-identical to a from-scratch recomputation; on `None` the delta was
/// not applicable and `tree` is left unspecified — recompute it.
pub fn repair_shortest_path_tree(
    net: &Network,
    tree: &mut SpfTree,
    changes: &[LinkChange],
) -> Option<usize> {
    if !net.contains_node(tree.root) {
        return None;
    }
    let sources = [tree.root];
    let mut scratch = RepairScratch::default();
    repair_dijkstra(
        net,
        &sources,
        false,
        changes,
        &mut tree.dist,
        &mut tree.parent,
        &mut scratch,
    )
}

/// Repairs a multi-source `forest` in place so it equals
/// [`shortest_path_forest`]`(net, sources)` after the link delta `changes`.
///
/// Same contract as [`repair_shortest_path_tree`], with the forest
/// tie-break (sources keep `None` parents).
pub fn repair_shortest_path_forest(
    net: &Network,
    forest: &mut SpfTree,
    sources: &[NodeId],
    changes: &[LinkChange],
) -> Option<usize> {
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() || sorted.iter().any(|&s| !net.contains_node(s)) {
        return None;
    }
    let mut scratch = RepairScratch::default();
    repair_dijkstra(
        net,
        &sorted,
        true,
        changes,
        &mut forest.dist,
        &mut forest.parent,
        &mut scratch,
    )
}

/// Computes hop distances from `root` over up links (BFS).
///
/// `None` marks unreachable nodes.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn hop_distances(net: &Network, root: NodeId) -> Vec<Option<u32>> {
    assert!(net.contains_node(root), "unknown BFS root {root}");
    let mut dist = vec![None; net.len()];
    dist[root.index()] = Some(0);
    let mut frontier = vec![root];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for u in frontier {
            for (v, _) in net.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(d);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// All-pairs shortest-path costs via repeated Dijkstra.
///
/// `result[u][v]` is the least cost between `u` and `v` (`None` when
/// disconnected). Quadratic in memory; intended for the few-hundred-switch
/// networks of the paper.
pub fn all_pairs_costs(net: &Network) -> Vec<Vec<Option<u64>>> {
    net.nodes()
        .map(|u| shortest_path_tree(net, u).dist)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    /// Square with a diagonal:
    ///
    /// ```text
    /// 0 -1- 1
    /// |   / |
    /// 4  1  2
    /// | /   |
    /// 2 -1- 3
    /// ```
    fn diamond() -> Network {
        NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 4)
            .link(1, 2, 1)
            .link(1, 3, 2)
            .link(2, 3, 1)
            .build()
    }

    #[test]
    fn dijkstra_finds_cheapest_paths() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        assert_eq!(tree.cost_to(NodeId(0)), Some(0));
        assert_eq!(tree.cost_to(NodeId(1)), Some(1));
        assert_eq!(tree.cost_to(NodeId(2)), Some(2), "via node 1, not direct");
        assert_eq!(tree.cost_to(NodeId(3)), Some(3));
        assert_eq!(
            tree.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn dijkstra_ties_break_deterministically() {
        // Two equal-cost paths 0->1->3 and 0->2->3; the tie must go to the
        // smaller parent id (1).
        let net = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(1, 3, 1)
            .link(2, 3, 1)
            .build();
        let tree = shortest_path_tree(&net, NodeId(0));
        assert_eq!(tree.parent[3].unwrap().0, NodeId(1));
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let net = NetworkBuilder::new(3).link(0, 1, 1).build();
        let tree = shortest_path_tree(&net, NodeId(0));
        assert!(!tree.reaches(NodeId(2)));
        assert_eq!(tree.path_to(NodeId(2)), None);
        assert_eq!(tree.links_to(NodeId(2)), None);
        assert_eq!(tree.first_hop(NodeId(2)), None);
    }

    #[test]
    fn links_to_returns_link_sequence() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        let links = tree.links_to(NodeId(2)).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(tree.links_to(NodeId(0)).unwrap(), Vec::<LinkId>::new());
    }

    #[test]
    fn first_hop_is_roots_neighbor() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        assert_eq!(tree.first_hop(NodeId(3)), Some(NodeId(1)));
        assert_eq!(tree.first_hop(NodeId(0)), None);
    }

    #[test]
    fn hop_distances_ignore_costs() {
        let net = diamond();
        let hops = hop_distances(&net, NodeId(0));
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[1], Some(1));
        assert_eq!(hops[2], Some(1), "direct link counts one hop despite cost");
        assert_eq!(hops[3], Some(2));
    }

    #[test]
    fn spf_skips_down_links() {
        use crate::{LinkId, LinkState};
        let mut net = diamond();
        net.set_link_state(LinkId(0), LinkState::Down).unwrap(); // 0-1
        let tree = shortest_path_tree(&net, NodeId(0));
        assert_eq!(tree.cost_to(NodeId(1)), Some(5), "must detour via 2");
    }

    #[test]
    fn forest_attaches_to_nearest_source() {
        // Path 0-1-2-3-4 with sources {0, 4}: node 1 attaches to 0, node 3
        // to 4; node 2 ties and keeps the smaller parent (1, reached from 0).
        let net = NetworkBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .build();
        let f = shortest_path_forest(&net, &[NodeId(0), NodeId(4)]);
        assert_eq!(f.cost_to(NodeId(0)), Some(0));
        assert_eq!(f.cost_to(NodeId(4)), Some(0));
        assert_eq!(f.cost_to(NodeId(2)), Some(2));
        assert_eq!(f.parent[1].unwrap().0, NodeId(0));
        assert_eq!(f.parent[3].unwrap().0, NodeId(4));
        assert_eq!(f.parent[2].unwrap().0, NodeId(1));
        assert!(f.parent[0].is_none());
        assert!(f.parent[4].is_none());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_forest_panics() {
        let net = diamond();
        shortest_path_forest(&net, &[]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_symmetry() {
        let net = diamond();
        let ap = all_pairs_costs(&net);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(ap[u][v], ap[v][u]);
            }
            assert_eq!(ap[u][u], Some(0));
        }
    }

    /// Applies `(link, new effective cost)` specs to `net` (None = down)
    /// and returns the matching [`LinkChange`] delta.
    fn apply_changes(net: &mut Network, specs: &[(u32, Option<u64>)]) -> Vec<LinkChange> {
        use crate::LinkState;
        let mut out = Vec::new();
        for &(raw, new_cost) in specs {
            let id = LinkId(raw);
            let link = net.link(id).unwrap();
            let old_cost = link.is_up().then_some(link.cost);
            match new_cost {
                None => {
                    net.set_link_state(id, LinkState::Down).unwrap();
                }
                Some(c) => {
                    net.set_link_cost(id, c).unwrap();
                    net.set_link_state(id, LinkState::Up).unwrap();
                }
            }
            out.push(LinkChange {
                link: id,
                old_cost,
                new_cost,
            });
        }
        out
    }

    fn assert_repair_matches(net: Network, specs: &[(u32, Option<u64>)]) {
        for root in net.nodes().collect::<Vec<_>>() {
            let mut fresh = net.clone();
            let mut tree = shortest_path_tree(&fresh, root);
            let changes = apply_changes(&mut fresh, specs);
            let work = repair_shortest_path_tree(&fresh, &mut tree, &changes);
            assert!(work.is_some(), "repair bailed for root {root}");
            let full = shortest_path_tree(&fresh, root);
            assert_eq!(tree, full, "repair diverged for root {root}");
        }
        // Forest flavor over a couple of source sets.
        let all: Vec<NodeId> = net.nodes().collect();
        for sources in [&all[..1], &all[..2.min(all.len())], &all[..]] {
            let mut fresh = net.clone();
            let mut forest = shortest_path_forest(&fresh, sources);
            let changes = apply_changes(&mut fresh, specs);
            let work = repair_shortest_path_forest(&fresh, &mut forest, sources, &changes);
            assert!(work.is_some(), "forest repair bailed for {sources:?}");
            assert_eq!(forest, shortest_path_forest(&fresh, sources));
        }
    }

    #[test]
    fn repair_matches_full_recompute_for_every_single_change() {
        // Every single-link worsening/improvement/flap on the diamond, for
        // every root and several forests, must equal a from-scratch run
        // byte-for-byte (dist, parent, tie-breaks).
        let link_count = diamond().link_count() as u32;
        for l in 0..link_count {
            for new_cost in [None, Some(1), Some(3), Some(50)] {
                assert_repair_matches(diamond(), &[(l, new_cost)]);
            }
        }
    }

    #[test]
    fn repair_applies_multi_change_batches() {
        assert_repair_matches(diamond(), &[(0, None), (2, Some(9)), (4, Some(1))]);
        assert_repair_matches(diamond(), &[(1, Some(1)), (3, None)]);
        // Take a node fully offline, in one batch.
        assert_repair_matches(diamond(), &[(0, None), (1, None)]);
    }

    #[test]
    fn repair_propagates_improvements_entering_an_orphaned_subtree() {
        // Regression for a subtle interaction: worsening 0-1 orphans node
        // 1's subtree, and the improvement on 2-1 is folded into the
        // orphaned region's new labels during the restricted re-run. Node
        // 3's shortcut through that region must still be discovered even
        // though the improved link itself no longer looks relaxable.
        let net = NetworkBuilder::new(4)
            .link(0, 1, 10) // worsens to 12, orphaning 1
            .link(0, 2, 2)
            .link(2, 1, 20) // improves to 1
            .link(1, 3, 1)
            .link(0, 3, 11) // old tie: parent 0 wins, so 3 stays unaffected
            .build();
        let mut tree = shortest_path_tree(&net, NodeId(0));
        assert_eq!(tree.parent[3].unwrap().0, NodeId(0), "precondition");
        let mut after = net.clone();
        let changes = apply_changes(&mut after, &[(0, Some(12)), (2, Some(1))]);
        assert!(repair_shortest_path_tree(&after, &mut tree, &changes).is_some());
        let full = shortest_path_tree(&after, NodeId(0));
        assert_eq!(tree.cost_to(NodeId(3)), Some(4), "via 0-2-1-3");
        assert_eq!(tree, full);
    }

    #[test]
    fn repair_restores_reachability_on_link_up() {
        let mut net = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .build();
        net.set_link_state(LinkId(2), crate::LinkState::Down)
            .unwrap();
        let mut tree = shortest_path_tree(&net, NodeId(0));
        assert!(!tree.reaches(NodeId(3)));
        let mut after = net.clone();
        let changes = apply_changes(&mut after, &[(2, Some(5))]);
        assert!(repair_shortest_path_tree(&after, &mut tree, &changes).is_some());
        assert_eq!(tree, shortest_path_tree(&after, NodeId(0)));
        assert_eq!(tree.cost_to(NodeId(3)), Some(7));
    }

    #[test]
    fn repair_rejects_bad_deltas() {
        let net = diamond();
        let tree = shortest_path_tree(&net, NodeId(0));

        // A delta that disagrees with the post-change image.
        let mut t = tree.clone();
        let stale = [LinkChange {
            link: LinkId(0),
            old_cost: Some(1),
            new_cost: Some(99),
        }];
        assert_eq!(repair_shortest_path_tree(&net, &mut t, &stale), None);

        // Duplicate mention of a link.
        let mut after = net.clone();
        let mut t = tree.clone();
        let mut changes = apply_changes(&mut after, &[(0, Some(7))]);
        changes.push(changes[0]);
        assert_eq!(repair_shortest_path_tree(&after, &mut t, &changes), None);

        // Unknown link id.
        let mut t = tree.clone();
        let bogus = [LinkChange {
            link: LinkId(99),
            old_cost: Some(1),
            new_cost: Some(2),
        }];
        assert_eq!(repair_shortest_path_tree(&net, &mut t, &bogus), None);

        // Zero-cost transitions are outside the canonical-parent argument.
        let mut zero = net.clone();
        let mut t = tree.clone();
        let changes = [LinkChange {
            link: LinkId(0),
            old_cost: Some(1),
            new_cost: Some(0),
        }];
        zero.set_link_cost(LinkId(0), 0).unwrap();
        assert_eq!(repair_shortest_path_tree(&zero, &mut t, &changes), None);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let net = diamond();
        let mut tree = shortest_path_tree(&net, NodeId(0));
        let before = tree.clone();
        assert_eq!(repair_shortest_path_tree(&net, &mut tree, &[]), Some(0));
        assert_eq!(tree, before);
    }
}
