//! Shortest-path machinery: Dijkstra by link cost and BFS by hop count.
//!
//! Both algorithms are deterministic: ties are broken by node id, which the
//! D-GMC protocol relies on so that switches computing from identical local
//! images propose identical topologies (see DESIGN.md §3).

use crate::{LinkId, Network, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpfTree {
    /// The root of the computation.
    pub root: NodeId,
    /// `dist[v]` is the least cost from the root to `v`, or `None` if
    /// unreachable.
    pub dist: Vec<Option<u64>>,
    /// `parent[v]` is the predecessor of `v` on its shortest path together
    /// with the link used, or `None` for the root and unreachable nodes.
    pub parent: Vec<Option<(NodeId, LinkId)>>,
}

impl SpfTree {
    /// Cost of the shortest path to `v`, if reachable.
    pub fn cost_to(&self, v: NodeId) -> Option<u64> {
        self.dist.get(v.index()).copied().flatten()
    }

    /// Returns `true` if `v` is reachable from the root.
    pub fn reaches(&self, v: NodeId) -> bool {
        self.cost_to(v).is_some()
    }

    /// Reconstructs the node path from the root to `v` (inclusive).
    ///
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert!(
            self.parent[path[0].index()].is_none(),
            "path must start at a root/source"
        );
        Some(path)
    }

    /// Reconstructs the link path from the root to `v`.
    ///
    /// Returns `None` if `v` is unreachable; the root maps to an empty path.
    pub fn links_to(&self, v: NodeId) -> Option<Vec<LinkId>> {
        if !self.reaches(v) {
            return None;
        }
        let mut links = Vec::new();
        let mut cur = v;
        while let Some((p, l)) = self.parent[cur.index()] {
            links.push(l);
            cur = p;
        }
        links.reverse();
        Some(links)
    }

    /// The first hop (neighbor of the root) on the path to `v`, if any.
    ///
    /// Returns `None` for the root itself and for unreachable nodes.
    pub fn first_hop(&self, v: NodeId) -> Option<NodeId> {
        let path = self.path_to(v)?;
        path.get(1).copied()
    }
}

/// Reusable Dijkstra arenas so repeated runs allocate nothing steady-state.
///
/// The output `dist`/`parent` vectors are owned by the caller (they end up
/// inside the returned [`SpfTree`]); the `done` bitmap and the binary heap
/// live here and are recycled across runs. Used by [`crate::SpfCache`].
#[derive(Debug, Default)]
pub(crate) struct DijkstraScratch {
    done: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
}

/// Core deterministic Dijkstra shared by [`shortest_path_tree`],
/// [`shortest_path_forest`] and the cache.
///
/// Every node in `sources` starts at distance 0. `keep_sources_rooted`
/// selects the forest tie-break (a source whose parent is still `None` keeps
/// it on a cost tie) versus the historical tree behavior. Clears and fills
/// `dist`/`parent` in place; returns the number of settled nodes — the
/// deterministic work metric recorded by the cache.
pub(crate) fn run_dijkstra(
    net: &Network,
    sources: &[NodeId],
    keep_sources_rooted: bool,
    dist: &mut Vec<Option<u64>>,
    parent: &mut Vec<Option<(NodeId, LinkId)>>,
    scratch: &mut DijkstraScratch,
) -> usize {
    let n = net.len();
    dist.clear();
    dist.resize(n, None);
    parent.clear();
    parent.resize(n, None);
    scratch.done.clear();
    scratch.done.resize(n, false);
    scratch.heap.clear();
    let done = &mut scratch.done;
    let heap = &mut scratch.heap;
    // (cost, node) min-heap; NodeId tie-break comes from the tuple ordering.
    for &s in sources {
        dist[s.index()] = Some(0);
        heap.push(Reverse((0, s)));
    }
    let mut settled = 0;
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        settled += 1;
        for (v, link) in net.neighbors(u) {
            let nd = d + link.cost;
            let better = match dist[v.index()] {
                None => true,
                Some(old) if nd < old => true,
                Some(old) if nd == old => {
                    // Deterministic tie-break: prefer smaller (parent, link).
                    match parent[v.index()] {
                        Some((pu, pl)) => (u, link.id) < (pu, pl),
                        None => !keep_sources_rooted,
                    }
                }
                _ => false,
            };
            if better {
                dist[v.index()] = Some(nd);
                parent[v.index()] = Some((u, link.id));
                if !done[v.index()] {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    settled
}

/// Computes the deterministic Dijkstra shortest-path tree rooted at `root`.
///
/// Only up links participate. Cost ties are broken toward the smaller
/// predecessor node id and then the smaller link id, so two switches with the
/// same network image compute identical trees.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn shortest_path_tree(net: &Network, root: NodeId) -> SpfTree {
    assert!(net.contains_node(root), "unknown SPF root {root}");
    let mut dist = Vec::new();
    let mut parent = Vec::new();
    let mut scratch = DijkstraScratch::default();
    run_dijkstra(net, &[root], false, &mut dist, &mut parent, &mut scratch);
    SpfTree { root, dist, parent }
}

/// Computes the deterministic multi-source Dijkstra forest of `sources`.
///
/// Every source has distance 0; `parent` edges lead back toward the nearest
/// source. Used by Steiner heuristics that grow a tree toward the closest
/// terminal. Tie-breaking matches [`shortest_path_tree`].
///
/// The returned tree's `root` field is the smallest source id.
///
/// # Panics
///
/// Panics if `sources` is empty or contains an unknown node.
pub fn shortest_path_forest(net: &Network, sources: &[NodeId]) -> SpfTree {
    assert!(!sources.is_empty(), "forest needs at least one source");
    for &s in sources {
        assert!(net.contains_node(s), "unknown forest source {s}");
    }
    let mut dist = Vec::new();
    let mut parent = Vec::new();
    let mut scratch = DijkstraScratch::default();
    run_dijkstra(net, sources, true, &mut dist, &mut parent, &mut scratch);
    let root = *sources.iter().min().expect("non-empty");
    SpfTree { root, dist, parent }
}

/// Computes hop distances from `root` over up links (BFS).
///
/// `None` marks unreachable nodes.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn hop_distances(net: &Network, root: NodeId) -> Vec<Option<u32>> {
    assert!(net.contains_node(root), "unknown BFS root {root}");
    let mut dist = vec![None; net.len()];
    dist[root.index()] = Some(0);
    let mut frontier = vec![root];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for u in frontier {
            for (v, _) in net.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(d);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// All-pairs shortest-path costs via repeated Dijkstra.
///
/// `result[u][v]` is the least cost between `u` and `v` (`None` when
/// disconnected). Quadratic in memory; intended for the few-hundred-switch
/// networks of the paper.
pub fn all_pairs_costs(net: &Network) -> Vec<Vec<Option<u64>>> {
    net.nodes()
        .map(|u| shortest_path_tree(net, u).dist)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    /// Square with a diagonal:
    ///
    /// ```text
    /// 0 -1- 1
    /// |   / |
    /// 4  1  2
    /// | /   |
    /// 2 -1- 3
    /// ```
    fn diamond() -> Network {
        NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 4)
            .link(1, 2, 1)
            .link(1, 3, 2)
            .link(2, 3, 1)
            .build()
    }

    #[test]
    fn dijkstra_finds_cheapest_paths() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        assert_eq!(tree.cost_to(NodeId(0)), Some(0));
        assert_eq!(tree.cost_to(NodeId(1)), Some(1));
        assert_eq!(tree.cost_to(NodeId(2)), Some(2), "via node 1, not direct");
        assert_eq!(tree.cost_to(NodeId(3)), Some(3));
        assert_eq!(
            tree.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn dijkstra_ties_break_deterministically() {
        // Two equal-cost paths 0->1->3 and 0->2->3; the tie must go to the
        // smaller parent id (1).
        let net = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(0, 2, 1)
            .link(1, 3, 1)
            .link(2, 3, 1)
            .build();
        let tree = shortest_path_tree(&net, NodeId(0));
        assert_eq!(tree.parent[3].unwrap().0, NodeId(1));
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let net = NetworkBuilder::new(3).link(0, 1, 1).build();
        let tree = shortest_path_tree(&net, NodeId(0));
        assert!(!tree.reaches(NodeId(2)));
        assert_eq!(tree.path_to(NodeId(2)), None);
        assert_eq!(tree.links_to(NodeId(2)), None);
        assert_eq!(tree.first_hop(NodeId(2)), None);
    }

    #[test]
    fn links_to_returns_link_sequence() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        let links = tree.links_to(NodeId(2)).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(tree.links_to(NodeId(0)).unwrap(), Vec::<LinkId>::new());
    }

    #[test]
    fn first_hop_is_roots_neighbor() {
        let tree = shortest_path_tree(&diamond(), NodeId(0));
        assert_eq!(tree.first_hop(NodeId(3)), Some(NodeId(1)));
        assert_eq!(tree.first_hop(NodeId(0)), None);
    }

    #[test]
    fn hop_distances_ignore_costs() {
        let net = diamond();
        let hops = hop_distances(&net, NodeId(0));
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[1], Some(1));
        assert_eq!(hops[2], Some(1), "direct link counts one hop despite cost");
        assert_eq!(hops[3], Some(2));
    }

    #[test]
    fn spf_skips_down_links() {
        use crate::{LinkId, LinkState};
        let mut net = diamond();
        net.set_link_state(LinkId(0), LinkState::Down).unwrap(); // 0-1
        let tree = shortest_path_tree(&net, NodeId(0));
        assert_eq!(tree.cost_to(NodeId(1)), Some(5), "must detour via 2");
    }

    #[test]
    fn forest_attaches_to_nearest_source() {
        // Path 0-1-2-3-4 with sources {0, 4}: node 1 attaches to 0, node 3
        // to 4; node 2 ties and keeps the smaller parent (1, reached from 0).
        let net = NetworkBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .build();
        let f = shortest_path_forest(&net, &[NodeId(0), NodeId(4)]);
        assert_eq!(f.cost_to(NodeId(0)), Some(0));
        assert_eq!(f.cost_to(NodeId(4)), Some(0));
        assert_eq!(f.cost_to(NodeId(2)), Some(2));
        assert_eq!(f.parent[1].unwrap().0, NodeId(0));
        assert_eq!(f.parent[3].unwrap().0, NodeId(4));
        assert_eq!(f.parent[2].unwrap().0, NodeId(1));
        assert!(f.parent[0].is_none());
        assert!(f.parent[4].is_none());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_forest_panics() {
        let net = diamond();
        shortest_path_forest(&net, &[]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_symmetry() {
        let net = diamond();
        let ap = all_pairs_costs(&net);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(ap[u][v], ap[v][u]);
            }
            assert_eq!(ap[u][u], Some(0));
        }
    }
}
