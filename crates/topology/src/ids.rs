use std::fmt;

/// Identifier of a network switch (a node of the graph).
///
/// Switch addresses in the paper are the integers `0..n-1`; vector timestamps
/// are indexed by them, so node ids are dense by construction.
///
/// # Examples
///
/// ```
/// use dgmc_topology::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` suitable for indexing dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    /// # Panics
    ///
    /// Panics if `v` does not fit the `u32` id space — a silent `as u32`
    /// truncation would alias two distinct nodes.
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds the u32 NodeId space"))
    }
}

/// Identifier of a point-to-point link.
///
/// Link ids are stable across [`crate::Network::set_link_state`] changes so a
/// failed link can later be repaired and recognized as the same link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the id as a `usize` suitable for indexing dense per-link tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(17).to_string(), "s17");
        assert_eq!(NodeId(17).index(), 17);
        assert_eq!(NodeId::from(4usize), NodeId(4));
        assert_eq!(NodeId::from(9u32), NodeId(9));
    }

    #[test]
    fn link_id_display_and_index() {
        assert_eq!(LinkId(3).to_string(), "l3");
        assert_eq!(LinkId(3).index(), 3);
        assert_eq!(LinkId::from(8u32), LinkId(8));
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "exceeds the u32 NodeId space")]
    fn node_id_from_usize_rejects_truncation() {
        // Before the checked conversion this silently wrapped to NodeId(0).
        let _ = NodeId::from(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(5) > LinkId(4));
    }
}
