use crate::{LinkId, NodeId, TopologyError};
use std::fmt;

/// Operational state of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkState {
    /// The link carries traffic.
    #[default]
    Up,
    /// The link has failed; it is ignored by routing but keeps its identity.
    Down,
}

impl fmt::Display for LinkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkState::Up => f.write_str("up"),
            LinkState::Down => f.write_str("down"),
        }
    }
}

/// A bidirectional point-to-point link between two switches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Link {
    /// Stable identifier of the link.
    pub id: LinkId,
    /// One endpoint (the smaller node id by construction).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Routing cost of traversing the link (used by SPF and tree algorithms).
    pub cost: u64,
    /// Operational state.
    pub state: LinkState,
}

impl Link {
    /// Returns the endpoint opposite to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n} is not an endpoint of {}", self.id)
        }
    }

    /// Returns `true` if the link is operational.
    pub fn is_up(&self) -> bool {
        self.state == LinkState::Up
    }

    /// Returns both endpoints as an ordered pair `(min, max)`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }
}

/// The communication network: switches (nodes) joined by point-to-point links.
///
/// Nodes are dense (`0..len()`), matching the paper's switch addresses
/// `0..n-1`, which index vector timestamps. Links keep a stable [`LinkId`]
/// across up/down transitions so failure and repair events refer to the same
/// entity.
///
/// # Examples
///
/// ```
/// use dgmc_topology::{Network, NodeId};
///
/// let mut net = Network::with_nodes(3);
/// let l = net.add_link(NodeId(0), NodeId(1), 10).unwrap();
/// net.add_link(NodeId(1), NodeId(2), 20).unwrap();
/// assert_eq!(net.degree(NodeId(1)), 2);
/// assert_eq!(net.link(l).unwrap().cost, 10);
/// assert!(net.is_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    links: Vec<Link>,
    /// adjacency\[node\] = link ids incident to node (up and down links alike).
    adjacency: Vec<Vec<LinkId>>,
    /// Monotonic mutation counter; see [`Network::epoch`].
    epoch: u64,
    /// XOR accumulator of per-link fingerprints; see [`Network::digest`].
    link_acc: u64,
}

/// Equality is content equality (nodes, links, adjacency); the mutation
/// history tracked by [`Network::epoch`] does not participate, so a network
/// whose link went down and back up still equals its untouched clone.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.links == other.links && self.adjacency == other.adjacency
    }
}

/// SplitMix64 finalizer used to fingerprint links for [`Network::digest`].
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent fingerprint of one link's full identity. The link id
/// participates so that two networks with the same shape but different id
/// assignments hash differently (cached `SpfTree`s embed `LinkId`s).
fn link_fingerprint(l: &Link) -> u64 {
    let mut h = mix(l.id.index() as u64);
    h = mix(h ^ (((l.a.index() as u64) << 32) | l.b.index() as u64));
    h = mix(h ^ l.cost);
    mix(h ^ l.is_up() as u64)
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a network with `n` isolated nodes and no links.
    pub fn with_nodes(n: usize) -> Self {
        Network {
            links: Vec::new(),
            adjacency: vec![Vec::new(); n],
            epoch: 0,
            link_acc: 0,
        }
    }

    /// Monotonic mutation counter: bumped by every call that changes the
    /// network's content ([`add_node`](Self::add_node),
    /// [`add_link`](Self::add_link), and state-changing
    /// [`set_link_state`](Self::set_link_state)). A cached computation keyed
    /// on a given epoch is stale iff the epoch moved. Cloning preserves the
    /// epoch; redundant `set_link_state` calls do not bump it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Order-independent content digest.
    ///
    /// Two networks with identical nodes, links (including [`LinkId`]
    /// assignment, costs and up/down states) have equal digests regardless of
    /// how they were built — a link that went down and back up restores the
    /// original digest. [`SpfCache`](crate::SpfCache) keys shared results on
    /// this value so engines whose local images agree byte-for-byte reuse each
    /// other's shortest-path trees.
    pub fn digest(&self) -> u64 {
        mix(self.adjacency.len() as u64 ^ 0xD1B5_4A32_D192_ED03) ^ self.link_acc
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the network has no switches.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds a new isolated switch and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the node count would exceed the `u32` id space (a silent
    /// `as u32` truncation here would alias two distinct switches).
    pub fn add_node(&mut self) -> NodeId {
        let id = u32::try_from(self.adjacency.len())
            .expect("node count exceeds the u32 NodeId space — ids would alias");
        self.adjacency.push(Vec::new());
        self.epoch += 1;
        NodeId(id)
    }

    /// Returns `true` if `n` is a node of this network.
    pub fn contains_node(&self, n: NodeId) -> bool {
        n.index() < self.adjacency.len()
    }

    /// Adds an up link of the given `cost` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either endpoint does not
    /// exist, [`TopologyError::SelfLoop`] if `a == b`, and
    /// [`TopologyError::DuplicateLink`] if the two nodes are already joined.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, cost: u64) -> Result<LinkId, TopologyError> {
        if !self.contains_node(a) {
            return Err(TopologyError::UnknownNode(a));
        }
        if !self.contains_node(b) {
            return Err(TopologyError::UnknownNode(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self.link_between(a, b).is_some() {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let id = LinkId(
            u32::try_from(self.links.len())
                .expect("link count exceeds the u32 LinkId space — ids would alias"),
        );
        self.links.push(Link {
            id,
            a: lo,
            b: hi,
            cost,
            state: LinkState::Up,
        });
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        self.link_acc ^= link_fingerprint(&self.links[id.index()]);
        self.epoch += 1;
        Ok(id)
    }

    /// Looks up a link by id.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// Finds the link joining `a` and `b` regardless of state, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        let adj = self.adjacency.get(a.index())?;
        adj.iter()
            .map(|&id| &self.links[id.index()])
            .find(|l| l.other(a) == b)
    }

    /// Sets the operational state of a link.
    ///
    /// Returns the previous state.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownLink`] if the link does not exist.
    pub fn set_link_state(
        &mut self,
        id: LinkId,
        state: LinkState,
    ) -> Result<LinkState, TopologyError> {
        let link = self
            .links
            .get_mut(id.index())
            .ok_or(TopologyError::UnknownLink(id))?;
        let prev = link.state;
        if prev != state {
            let old_fp = link_fingerprint(link);
            link.state = state;
            self.link_acc ^= old_fp ^ link_fingerprint(&self.links[id.index()]);
            self.epoch += 1;
        }
        Ok(prev)
    }

    /// Sets the routing cost of a link (up or down).
    ///
    /// Returns the previous cost. Like [`set_link_state`](Self::set_link_state),
    /// a redundant write (same cost) leaves the epoch and digest untouched.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownLink`] if the link does not exist.
    pub fn set_link_cost(&mut self, id: LinkId, cost: u64) -> Result<u64, TopologyError> {
        let link = self
            .links
            .get_mut(id.index())
            .ok_or(TopologyError::UnknownLink(id))?;
        let prev = link.cost;
        if prev != cost {
            let old_fp = link_fingerprint(link);
            link.cost = cost;
            self.link_acc ^= old_fp ^ link_fingerprint(&self.links[id.index()]);
            self.epoch += 1;
        }
        Ok(prev)
    }

    /// Number of links incident to `n` that are currently up.
    pub fn degree(&self, n: NodeId) -> usize {
        self.up_links_of(n).count()
    }

    /// Iterates over all links (up and down).
    pub fn links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// Iterates over all links that are currently up.
    pub fn up_links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(|l| l.is_up())
    }

    /// Iterates over the up links incident to `n`.
    pub fn up_links_of(&self, n: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.adjacency
            .get(n.index())
            .into_iter()
            .flatten()
            .map(move |&id| &self.links[id.index()])
            .filter(|l| l.is_up())
    }

    /// Iterates over the up neighbors of `n` together with the joining link.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, &Link)> + '_ {
        self.up_links_of(n).map(move |l| (l.other(n), l))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Total number of links regardless of state.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if every node can reach every other node over up links.
    ///
    /// The empty network is considered connected.
    pub fn is_connected(&self) -> bool {
        crate::unionfind::components(self) <= 1
    }
}

/// Incremental builder for [`Network`] used by tests and generators.
///
/// # Examples
///
/// ```
/// use dgmc_topology::{NetworkBuilder, NodeId};
///
/// let net = NetworkBuilder::new(4)
///     .link(0, 1, 1)
///     .link(1, 2, 1)
///     .link(2, 3, 1)
///     .build();
/// assert!(net.is_connected());
/// assert_eq!(net.degree(NodeId(1)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    net: Network,
}

impl NetworkBuilder {
    /// Starts a builder for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        NetworkBuilder {
            net: Network::with_nodes(n),
        }
    }

    /// Adds an up link between `a` and `b` with the given cost.
    ///
    /// # Panics
    ///
    /// Panics on unknown endpoints, self loops and duplicate links; the
    /// builder targets hand-written topologies where these are programmer
    /// errors.
    pub fn link(mut self, a: u32, b: u32, cost: u64) -> Self {
        self.net
            .add_link(NodeId(a), NodeId(b), cost)
            .expect("builder link must be valid");
        self
    }

    /// Finishes and returns the network.
    pub fn build(self) -> Network {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Network {
        NetworkBuilder::new(3).link(0, 1, 5).link(1, 2, 7).build()
    }

    #[test]
    fn with_nodes_creates_isolated_nodes() {
        let net = Network::with_nodes(4);
        assert_eq!(net.len(), 4);
        assert_eq!(net.link_count(), 0);
        assert!(!net.is_connected());
        assert!(Network::with_nodes(0).is_connected());
        assert!(Network::with_nodes(1).is_connected());
    }

    #[test]
    fn add_link_validates_endpoints() {
        let mut net = Network::with_nodes(2);
        assert_eq!(
            net.add_link(NodeId(0), NodeId(5), 1),
            Err(TopologyError::UnknownNode(NodeId(5)))
        );
        assert_eq!(
            net.add_link(NodeId(1), NodeId(1), 1),
            Err(TopologyError::SelfLoop(NodeId(1)))
        );
        net.add_link(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(
            net.add_link(NodeId(1), NodeId(0), 2),
            Err(TopologyError::DuplicateLink(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn link_endpoints_are_normalized() {
        let mut net = Network::with_nodes(3);
        let id = net.add_link(NodeId(2), NodeId(0), 4).unwrap();
        let link = net.link(id).unwrap();
        assert_eq!(link.endpoints(), (NodeId(0), NodeId(2)));
        assert_eq!(link.other(NodeId(0)), NodeId(2));
        assert_eq!(link.other(NodeId(2)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_panics_on_non_endpoint() {
        let net = path3();
        let l = net.link(LinkId(0)).unwrap();
        l.other(NodeId(2));
    }

    #[test]
    fn link_between_finds_either_direction() {
        let net = path3();
        assert!(net.link_between(NodeId(0), NodeId(1)).is_some());
        assert!(net.link_between(NodeId(1), NodeId(0)).is_some());
        assert!(net.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn set_link_state_affects_degree_and_connectivity() {
        let mut net = path3();
        assert!(net.is_connected());
        assert_eq!(net.degree(NodeId(1)), 2);
        let prev = net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        assert_eq!(prev, LinkState::Up);
        assert_eq!(net.degree(NodeId(1)), 1);
        assert!(!net.is_connected());
        // Repair: the same link id comes back.
        net.set_link_state(LinkId(0), LinkState::Up).unwrap();
        assert!(net.is_connected());
    }

    #[test]
    fn set_link_state_unknown_link() {
        let mut net = path3();
        assert_eq!(
            net.set_link_state(LinkId(99), LinkState::Down),
            Err(TopologyError::UnknownLink(LinkId(99)))
        );
    }

    #[test]
    fn neighbors_skip_down_links() {
        let mut net = path3();
        net.set_link_state(LinkId(1), LinkState::Down).unwrap();
        let nbrs: Vec<NodeId> = net.neighbors(NodeId(1)).map(|(n, _)| n).collect();
        assert_eq!(nbrs, vec![NodeId(0)]);
        // The down link still exists.
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.up_links().count(), 1);
    }

    #[test]
    fn nodes_iterates_all_ids() {
        let net = path3();
        let ids: Vec<NodeId> = net.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn epoch_bumps_on_every_content_mutation() {
        let mut net = Network::with_nodes(2);
        let e0 = net.epoch();
        net.add_node();
        assert_eq!(net.epoch(), e0 + 1);
        let l = net.add_link(NodeId(0), NodeId(1), 3).unwrap();
        assert_eq!(net.epoch(), e0 + 2);
        net.set_link_state(l, LinkState::Down).unwrap();
        assert_eq!(net.epoch(), e0 + 3);
        // Redundant state write: content unchanged, epoch untouched.
        net.set_link_state(l, LinkState::Down).unwrap();
        assert_eq!(net.epoch(), e0 + 3);
        // Failed mutations leave the epoch alone.
        net.add_link(NodeId(0), NodeId(1), 9).unwrap_err();
        assert_eq!(net.epoch(), e0 + 3);
        // Clones carry the epoch.
        assert_eq!(net.clone().epoch(), net.epoch());
    }

    #[test]
    fn set_link_cost_is_content_addressed() {
        let mut net = path3();
        let d0 = net.digest();
        let e0 = net.epoch();
        let prev = net.set_link_cost(LinkId(0), 9).unwrap();
        assert_eq!(prev, 5);
        assert_eq!(net.link(LinkId(0)).unwrap().cost, 9);
        assert_ne!(net.digest(), d0);
        assert_eq!(net.epoch(), e0 + 1);
        // Redundant write: nothing moves.
        net.set_link_cost(LinkId(0), 9).unwrap();
        assert_eq!(net.epoch(), e0 + 1);
        // Restoring the cost restores the digest (not the epoch).
        net.set_link_cost(LinkId(0), 5).unwrap();
        assert_eq!(net.digest(), d0);
        assert_eq!(
            net.set_link_cost(LinkId(99), 1),
            Err(TopologyError::UnknownLink(LinkId(99)))
        );
    }

    #[test]
    fn digest_is_content_addressed() {
        let build = || {
            NetworkBuilder::new(4)
                .link(0, 1, 1)
                .link(1, 2, 2)
                .link(2, 3, 3)
                .build()
        };
        let a = build();
        let mut b = build();
        assert_eq!(a.digest(), b.digest());

        // Down then up restores content, digest and equality — but not epoch.
        b.set_link_state(LinkId(1), LinkState::Down).unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a, b);
        b.set_link_state(LinkId(1), LinkState::Up).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        assert_ne!(a.epoch(), b.epoch());

        // Differing cost, state or node count all change the digest.
        let cheaper = NetworkBuilder::new(4)
            .link(0, 1, 1)
            .link(1, 2, 2)
            .link(2, 3, 2)
            .build();
        assert_ne!(a.digest(), cheaper.digest());
        let mut more_nodes = build();
        more_nodes.add_node();
        assert_ne!(a.digest(), more_nodes.digest());
    }

    #[test]
    fn add_node_extends_network() {
        let mut net = path3();
        let n = net.add_node();
        assert_eq!(n, NodeId(3));
        assert_eq!(net.len(), 4);
        assert!(!net.is_connected());
    }
}
