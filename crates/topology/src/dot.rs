//! Graphviz DOT export for networks (debugging and documentation).

use crate::Network;
use std::fmt::Write as _;

/// Renders the network as a Graphviz `graph` document.
///
/// Up links are solid and labeled with their cost; down links are dashed
/// and gray. Feed the output to `dot -Tsvg` to visualize a topology.
///
/// # Examples
///
/// ```
/// use dgmc_topology::{dot, generate};
/// let net = generate::ring(3);
/// let rendered = dot::to_dot(&net, "ring3");
/// assert!(rendered.starts_with("graph ring3 {"));
/// assert!(rendered.contains("n0 -- n1"));
/// ```
pub fn to_dot(net: &Network, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for n in net.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, n.0);
    }
    for link in net.links() {
        if link.is_up() {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\"];",
                link.a.0, link.b.0, link.cost
            );
        } else {
            let _ = writeln!(
                out,
                "  n{} -- n{} [style=dashed color=gray];",
                link.a.0, link.b.0
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the network with a highlighted edge set (e.g. an MC topology):
/// highlighted edges are bold red, members get a filled style.
pub fn to_dot_highlighted(
    net: &Network,
    name: &str,
    highlight_edges: &[(crate::NodeId, crate::NodeId)],
    highlight_nodes: &[crate::NodeId],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for n in net.nodes() {
        if highlight_nodes.contains(&n) {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\" style=filled fillcolor=lightblue];",
                n.0, n.0
            );
        } else {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, n.0);
        }
    }
    let is_hl = |a: crate::NodeId, b: crate::NodeId| {
        highlight_edges
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    };
    for link in net.up_links() {
        if is_hl(link.a, link.b) {
            let _ = writeln!(
                out,
                "  n{} -- n{} [color=red penwidth=2.5];",
                link.a.0, link.b.0
            );
        } else {
            let _ = writeln!(out, "  n{} -- n{} [color=gray70];", link.a.0, link.b.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, LinkId, LinkState, NodeId};

    #[test]
    fn dot_contains_all_links_and_costs() {
        let net = generate::path(3);
        let d = to_dot(&net, "p3");
        assert!(d.contains("graph p3 {"));
        assert!(d.contains("n0 -- n1 [label=\"1\"]"));
        assert!(d.contains("n1 -- n2 [label=\"1\"]"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn down_links_render_dashed() {
        let mut net = generate::path(3);
        net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        let d = to_dot(&net, "g");
        assert!(d.contains("style=dashed"));
        let labeled_edges = d
            .lines()
            .filter(|l| l.contains("--") && l.contains("label="))
            .count();
        assert_eq!(labeled_edges, 1, "only the up link carries a cost label");
    }

    #[test]
    fn highlighted_edges_and_members() {
        let net = generate::ring(4);
        let d = to_dot_highlighted(
            &net,
            "mc",
            &[(NodeId(0), NodeId(1))],
            &[NodeId(0), NodeId(1)],
        );
        assert_eq!(d.matches("penwidth=2.5").count(), 1);
        assert_eq!(d.matches("fillcolor=lightblue").count(), 2);
        assert!(d.matches("color=gray70").count() >= 3);
    }
}
