//! Whole-network metrics: eccentricity, diameter and flooding diameter.
//!
//! The paper defines `Tf`, the *flooding diameter*, as the worst-case time to
//! complete a flooding operation. With a uniform per-hop LSA relay delay that
//! is `hop_diameter * per_hop_delay`, which [`flooding_diameter_hops`]
//! computes the hop part of.

use crate::{spf, Network, NodeId};

/// Hop eccentricity of `n`: the largest hop distance from `n` to any
/// reachable node.
///
/// Returns 0 for a single-node network.
///
/// # Panics
///
/// Panics if `n` is not a node of `net`.
pub fn hop_eccentricity(net: &Network, n: NodeId) -> u32 {
    spf::hop_distances(net, n)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Hop diameter over up links: the maximum eccentricity over all nodes.
///
/// Disconnected pairs are ignored (the diameter is computed per component and
/// the maximum taken), so the value is meaningful even mid-failure.
pub fn hop_diameter(net: &Network) -> u32 {
    net.nodes()
        .map(|n| hop_eccentricity(net, n))
        .max()
        .unwrap_or(0)
}

/// Hop count a flood from the *worst* source needs to reach every node.
///
/// This equals [`hop_diameter`]: flooding proceeds along every link in
/// parallel, so completion time from source `s` is `eccentricity(s)` hops and
/// the worst case over sources is the diameter.
pub fn flooding_diameter_hops(net: &Network) -> u32 {
    hop_diameter(net)
}

/// Cost diameter over up links: the maximum shortest-path cost between any
/// reachable pair.
pub fn cost_diameter(net: &Network) -> u64 {
    net.nodes()
        .filter_map(|n| {
            spf::shortest_path_tree(net, n)
                .dist
                .into_iter()
                .flatten()
                .max()
        })
        .max()
        .unwrap_or(0)
}

/// Average node degree over up links.
pub fn average_degree(net: &Network) -> f64 {
    if net.is_empty() {
        return 0.0;
    }
    2.0 * net.up_links().count() as f64 / net.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn path4() -> Network {
        NetworkBuilder::new(4)
            .link(0, 1, 2)
            .link(1, 2, 2)
            .link(2, 3, 2)
            .build()
    }

    #[test]
    fn eccentricity_of_path_ends_and_middle() {
        let net = path4();
        assert_eq!(hop_eccentricity(&net, NodeId(0)), 3);
        assert_eq!(hop_eccentricity(&net, NodeId(1)), 2);
    }

    #[test]
    fn diameter_of_path_is_length() {
        assert_eq!(hop_diameter(&path4()), 3);
        assert_eq!(flooding_diameter_hops(&path4()), 3);
        assert_eq!(cost_diameter(&path4()), 6);
    }

    #[test]
    fn diameter_of_singletons_is_zero() {
        assert_eq!(hop_diameter(&Network::with_nodes(3)), 0);
        assert_eq!(hop_diameter(&Network::with_nodes(0)), 0);
        assert_eq!(cost_diameter(&Network::with_nodes(2)), 0);
    }

    #[test]
    fn average_degree_counts_both_endpoints() {
        let net = path4();
        assert!((average_degree(&net) - 1.5).abs() < 1e-12);
        assert_eq!(average_degree(&Network::with_nodes(0)), 0.0);
    }

    #[test]
    fn diameter_ignores_disconnected_pairs() {
        let net = NetworkBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(3, 4, 1)
            .build();
        assert_eq!(hop_diameter(&net), 2);
    }
}
