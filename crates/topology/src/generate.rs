//! Topology generators.
//!
//! The paper evaluates D-GMC on randomly generated graphs ("20 graphs were
//! generated randomly for each network size"). We use the Waxman generator —
//! the standard random-topology model of 1990s multicast studies (Waxman's
//! dynamic Steiner work is cited by the paper) — plus deterministic
//! structured topologies (ring, grid, star, complete, path) for unit tests.

use crate::{Network, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the Waxman random-graph model.
///
/// Nodes are placed uniformly at random in the unit square; a link joins `u`
/// and `v` with probability `alpha * exp(-d(u,v) / (beta * L))` where `L` is
/// the maximum possible distance. Larger `alpha` raises density everywhere;
/// larger `beta` favors long links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanParams {
    /// Average node degree to calibrate the density knob `alpha` to.
    ///
    /// Raw Waxman edge counts grow quadratically with `n`; the experiments
    /// need the same sparse degree at every network size, so `alpha` is
    /// derived per graph from this target (clamped so probabilities stay
    /// valid).
    pub target_avg_degree: f64,
    /// Distance-decay knob in `(0, 1]`; larger values favor long links.
    pub beta: f64,
    /// Cost assigned to a link of Euclidean length `d` is
    /// `1 + round(d * cost_scale)`.
    pub cost_scale: f64,
}

impl Default for WaxmanParams {
    /// Defaults (`target_avg_degree = 4`, `beta = 0.4`) give the sparse
    /// WAN-like topologies typical of 1990s multicast studies.
    fn default() -> Self {
        WaxmanParams {
            target_avg_degree: 4.0,
            beta: 0.4,
            cost_scale: 100.0,
        }
    }
}

/// Generates a connected Waxman random graph with `n` nodes.
///
/// If the raw Waxman draw is disconnected, the components are stitched
/// together with links between their geometrically closest representatives
/// (connectivity repair), so the result is always connected.
///
/// # Panics
///
/// Panics if `n == 0` or the parameters are outside `(0, 1]`.
pub fn waxman<R: Rng + ?Sized>(rng: &mut R, n: usize, params: &WaxmanParams) -> Network {
    let (mut net, positions) = waxman_draw(rng, n, params);
    repair_connectivity(&mut net, &positions, params.cost_scale);
    net
}

/// The raw (possibly disconnected) Waxman draw plus the node positions it
/// was sampled from — split out so tests can run alternative connectivity
/// repairs against identical draws.
fn waxman_draw<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    params: &WaxmanParams,
) -> (Network, Vec<(f64, f64)>) {
    assert!(n > 0, "waxman graph needs at least one node");
    assert!(
        params.beta > 0.0 && params.beta <= 1.0,
        "beta must be in (0, 1]"
    );
    assert!(
        params.target_avg_degree > 0.0,
        "target average degree must be positive"
    );
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = 2f64.sqrt();
    // Calibrate alpha so the expected number of links hits the degree target:
    // E[links] = alpha * sum(exp(-d/(beta*L))) and avg degree = 2 E[links] / n.
    let mut weight_sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            weight_sum += (-dist(positions[i], positions[j]) / (params.beta * l)).exp();
        }
    }
    let wanted_links = params.target_avg_degree * n as f64 / 2.0;
    let alpha = if weight_sum > 0.0 {
        (wanted_links / weight_sum).min(1.0)
    } else {
        0.0
    };
    let mut net = Network::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(positions[i], positions[j]);
            let p = alpha * (-d / (params.beta * l)).exp();
            if rng.gen::<f64>() < p {
                let cost = 1 + (d * params.cost_scale).round() as u64;
                net.add_link(NodeId(i as u32), NodeId(j as u32), cost)
                    .expect("generated links are unique");
            }
        }
    }
    (net, positions)
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Joins the connected components of `net` by adding links between the
/// geometrically closest cross-component node pairs.
///
/// Prim over components, rooted at node 0's component: each step adds the
/// link minimizing `(distance, inside node, outside node)` lexicographically
/// — the same pair the historical full rescan picked each round, so the
/// output is byte-identical — but component membership is tracked with
/// [`crate::unionfind::UnionFind`] and each outside node remembers its best
/// inside anchor, so after a step only the freshly absorbed component's
/// members relax the candidates. Total work is `O(n^2)` instead of the old
/// `O(components * n^2)` rescans.
fn repair_connectivity(net: &mut Network, positions: &[(f64, f64)], cost_scale: f64) {
    use crate::unionfind::UnionFind;
    let n = net.len();
    let mut uf = UnionFind::of_network(net);
    if uf.component_count() <= 1 {
        return;
    }
    // Member lists per representative; a component's list is consumed when
    // it is absorbed into the inside set.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = uf.find(i);
        members[r].push(i);
    }
    let root0 = uf.find(0);
    // best[j]: lex-smallest (distance, inside node) anchor of outside node j.
    let mut best: Vec<Option<(f64, usize)>> = vec![None; n];
    let mut newly_inside: Vec<usize> = std::mem::take(&mut members[root0]);
    while uf.component_count() > 1 {
        let root = uf.find(0);
        for &i in &newly_inside {
            for (j, bj) in best.iter_mut().enumerate() {
                if uf.find(j) == root {
                    continue;
                }
                let d = dist(positions[i], positions[j]);
                let better = match *bj {
                    None => true,
                    Some((bd, bi)) => d < bd || (d == bd && i < bi),
                };
                if better {
                    *bj = Some((d, i));
                }
            }
        }
        let mut pick: Option<(f64, usize, usize)> = None;
        for (j, bj) in best.iter().enumerate() {
            if uf.find(j) == root {
                continue;
            }
            let Some((d, i)) = *bj else { continue };
            let better = match pick {
                None => true,
                Some((pd, pi, _)) => d < pd || (d == pd && i < pi),
            };
            if better {
                pick = Some((d, i, j));
            }
        }
        let (d, i, j) = pick.expect("outside components have anchored candidates");
        let cost = 1 + (d * cost_scale).round() as u64;
        net.add_link(NodeId(i as u32), NodeId(j as u32), cost)
            .expect("repair links join distinct components");
        let absorbed = uf.find(j);
        uf.union(i, j);
        newly_inside = std::mem::take(&mut members[absorbed]);
    }
}

/// Generates a Barabási–Albert preferential-attachment graph: each new node
/// attaches to `m` existing nodes with probability proportional to their
/// degree, producing the heavy-tailed degree distributions of real
/// internetworks (a robustness check against the Waxman model).
///
/// Link costs are uniform in `1..=max_cost`. The construction is connected
/// by design.
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0` or `max_cost == 0`.
pub fn barabasi_albert<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize, max_cost: u64) -> Network {
    assert!(n > 0, "graph needs at least one node");
    assert!(m > 0, "attachment count must be positive");
    assert!(max_cost > 0, "costs must be positive");
    let mut net = Network::with_nodes(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<NodeId> = Vec::new();
    let seed_size = (m + 1).min(n);
    // Seed clique of m+1 nodes.
    for i in 0..seed_size {
        for j in (i + 1)..seed_size {
            let cost = rng.gen_range(1..=max_cost);
            net.add_link(NodeId(i as u32), NodeId(j as u32), cost)
                .expect("seed links unique");
            endpoints.push(NodeId(i as u32));
            endpoints.push(NodeId(j as u32));
        }
    }
    for v in seed_size..n {
        let v = NodeId(v as u32);
        let mut chosen: Vec<NodeId> = Vec::new();
        let mut guard = 0;
        while chosen.len() < m.min(v.index()) {
            guard += 1;
            let target = if endpoints.is_empty() || guard > 50 * m {
                // Degenerate fallback: uniform choice.
                NodeId(rng.gen_range(0..v.0))
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target != v && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for t in chosen {
            let cost = rng.gen_range(1..=max_cost);
            net.add_link(v, t, cost).expect("new node links unique");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    net
}

/// A path `0 - 1 - ... - (n-1)` with unit link costs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Network {
    assert!(n > 0, "path needs at least one node");
    let mut net = Network::with_nodes(n);
    for i in 1..n {
        net.add_link(NodeId((i - 1) as u32), NodeId(i as u32), 1)
            .expect("path links are unique");
    }
    net
}

/// A ring of `n >= 3` nodes with unit link costs.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3, "ring needs at least three nodes");
    let mut net = path(n);
    net.add_link(NodeId((n - 1) as u32), NodeId(0), 1)
        .expect("closing link is unique");
    net
}

/// A star with node 0 at the center and `n - 1` leaves, unit costs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Network {
    assert!(n > 0, "star needs at least one node");
    let mut net = Network::with_nodes(n);
    for i in 1..n {
        net.add_link(NodeId(0), NodeId(i as u32), 1)
            .expect("star links are unique");
    }
    net
}

/// A `rows x cols` grid with unit link costs, nodes numbered row-major.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Network {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut net = Network::with_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                net.add_link(id(r, c), id(r, c + 1), 1).expect("unique");
            }
            if r + 1 < rows {
                net.add_link(id(r, c), id(r + 1, c), 1).expect("unique");
            }
        }
    }
    net
}

/// The complete graph on `n` nodes with unit link costs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Network {
    assert!(n > 0, "complete graph needs at least one node");
    let mut net = Network::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            net.add_link(NodeId(i as u32), NodeId(j as u32), 1)
                .expect("unique");
        }
    }
    net
}

/// Picks `k` distinct random nodes of `net`.
///
/// # Panics
///
/// Panics if `k > net.len()`.
pub fn sample_nodes<R: Rng + ?Sized>(rng: &mut R, net: &Network, k: usize) -> Vec<NodeId> {
    assert!(k <= net.len(), "cannot sample more nodes than exist");
    let mut all: Vec<NodeId> = net.nodes().collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn waxman_is_connected_for_many_seeds() {
        let params = WaxmanParams::default();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = waxman(&mut rng, 60, &params);
            assert!(net.is_connected(), "seed {seed} produced disconnection");
            assert_eq!(net.len(), 60);
        }
    }

    #[test]
    fn waxman_is_reproducible_per_seed() {
        let params = WaxmanParams::default();
        let a = waxman(&mut StdRng::seed_from_u64(42), 50, &params);
        let b = waxman(&mut StdRng::seed_from_u64(42), 50, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn waxman_degree_is_sparse_but_nontrivial() {
        let params = WaxmanParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let net = waxman(&mut rng, 100, &params);
        let deg = metrics::average_degree(&net);
        assert!(
            (2.0..=8.0).contains(&deg),
            "average degree {deg} out of band"
        );
    }

    /// The historical connectivity repair: rescan every (inside, outside)
    /// pair per added link. Kept as the reference the Prim-style rewrite is
    /// checked against on identical raw draws.
    fn naive_repair(net: &mut Network, positions: &[(f64, f64)], cost_scale: f64) {
        loop {
            let labels = crate::unionfind::component_labels(net);
            let root = labels[0];
            let mut best: Option<(f64, usize, usize)> = None;
            for (i, &li) in labels.iter().enumerate() {
                if li != root {
                    continue;
                }
                for (j, &lj) in labels.iter().enumerate() {
                    if lj == root {
                        continue;
                    }
                    let d = dist(positions[i], positions[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
            match best {
                Some((d, i, j)) => {
                    let cost = 1 + (d * cost_scale).round() as u64;
                    net.add_link(NodeId(i as u32), NodeId(j as u32), cost)
                        .expect("repair links join distinct components");
                }
                None => return,
            }
        }
    }

    #[test]
    fn connectivity_repair_matches_the_naive_reference() {
        let mut repaired_any = false;
        for (n, deg) in [(30, 0.5), (60, 0.8), (90, 1.0), (120, 0.8)] {
            let params = WaxmanParams {
                target_avg_degree: deg,
                ..WaxmanParams::default()
            };
            for seed in [0u64, 3, 11, 42] {
                let mut rng = StdRng::seed_from_u64(seed);
                let (raw, positions) = waxman_draw(&mut rng, n, &params);
                repaired_any |= !raw.is_connected();
                let mut fast = raw.clone();
                repair_connectivity(&mut fast, &positions, params.cost_scale);
                let mut slow = raw;
                naive_repair(&mut slow, &positions, params.cost_scale);
                assert_eq!(fast, slow, "n {n} deg {deg} seed {seed}");
                assert_eq!(fast.digest(), slow.digest());
                assert!(fast.is_connected());
            }
        }
        assert!(repaired_any, "no draw exercised the repair path");
    }

    #[test]
    fn waxman_seeded_output_is_pinned() {
        // Digests and link counts captured from the generator *before* the
        // connectivity-repair rewrite: seeded output must stay byte-stable.
        type Pinned = (u64, u64, usize);
        let cases: [(usize, f64, [Pinned; 3]); 4] = [
            (
                50,
                4.0,
                [
                    (0, 0x3554227622a65bca, 104),
                    (7, 0x919a9b41188d2788, 95),
                    (42, 0xae13b2ba1f5bd6a8, 88),
                ],
            ),
            (
                80,
                1.2,
                [
                    (0, 0xab63d6d4d888818f, 80),
                    (7, 0x2db90a57efc5c1e4, 79),
                    (42, 0x95a3a4076e0ef74e, 81),
                ],
            ),
            (
                120,
                0.8,
                [
                    (0, 0xfbc5268a0580cea3, 120),
                    (7, 0x2bced7bf989df1e8, 119),
                    (42, 0xd92707e1208e1812, 119),
                ],
            ),
            (
                200,
                1.0,
                [
                    (0, 0xdf7f8859d70c6ef2, 199),
                    (7, 0x0ac5a47968c958ed, 199),
                    (42, 0x5aa99744f99e64a5, 199),
                ],
            ),
        ];
        for (n, deg, seeds) in cases {
            let params = WaxmanParams {
                target_avg_degree: deg,
                ..WaxmanParams::default()
            };
            for (seed, digest, links) in seeds {
                let net = waxman(&mut StdRng::seed_from_u64(seed), n, &params);
                assert_eq!(
                    (net.digest(), net.link_count()),
                    (digest, links),
                    "n {n} deg {deg} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn waxman_single_node() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = waxman(&mut rng, 1, &WaxmanParams::default());
        assert_eq!(net.len(), 1);
        assert!(net.is_connected());
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = barabasi_albert(&mut rng, 80, 2, 10);
        assert_eq!(net.len(), 80);
        assert!(net.is_connected());
        // Preferential attachment: the max degree far exceeds the mean.
        let degrees: Vec<usize> = net.nodes().map(|n| net.degree(n)).collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max as f64 > 2.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn barabasi_albert_is_reproducible() {
        let a = barabasi_albert(&mut StdRng::seed_from_u64(5), 40, 3, 5);
        let b = barabasi_albert(&mut StdRng::seed_from_u64(5), 40, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let one = barabasi_albert(&mut rng, 1, 2, 5);
        assert_eq!(one.len(), 1);
        let three = barabasi_albert(&mut rng, 3, 2, 5);
        assert!(three.is_connected());
    }

    #[test]
    fn structured_topologies_have_expected_shape() {
        assert_eq!(metrics::hop_diameter(&path(5)), 4);
        assert_eq!(metrics::hop_diameter(&ring(6)), 3);
        assert_eq!(metrics::hop_diameter(&star(9)), 2);
        assert_eq!(metrics::hop_diameter(&grid(3, 4)), 5);
        assert_eq!(metrics::hop_diameter(&complete(7)), 1);
        assert_eq!(grid(3, 4).len(), 12);
        assert_eq!(complete(5).link_count(), 10);
    }

    #[test]
    fn sample_nodes_returns_distinct_ids() {
        let net = path(10);
        let mut rng = StdRng::seed_from_u64(3);
        let picked = sample_nodes(&mut rng, &net, 6);
        assert_eq!(picked.len(), 6);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "samples must be distinct");
    }

    #[test]
    #[should_panic(expected = "cannot sample more")]
    fn sample_nodes_rejects_oversized_requests() {
        let net = path(3);
        let mut rng = StdRng::seed_from_u64(3);
        sample_nodes(&mut rng, &net, 4);
    }
}
