//! Network topology substrate for the D-GMC reproduction.
//!
//! This crate models the communication network of the paper — switches joined
//! by point-to-point links — as an undirected weighted graph, and provides the
//! graph machinery every other layer relies on:
//!
//! * [`Network`]: a mutable adjacency-list graph whose links can be taken up
//!   and down without losing their identity (needed to replay link events),
//! * random topology generators in [`generate`], most importantly the
//!   [Waxman] generator used by 1990s multicast studies,
//! * Dijkstra shortest paths and BFS hop distances in [`spf`],
//! * connectivity and diameter utilities in [`metrics`] and [`unionfind`].
//!
//! [Waxman]: generate::waxman
//!
//! # Examples
//!
//! ```
//! use dgmc_topology::{generate, spf, NodeId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let net = generate::waxman(&mut rng, 40, &generate::WaxmanParams::default());
//! assert!(net.is_connected());
//! let tree = spf::shortest_path_tree(&net, NodeId(0));
//! assert_eq!(tree.dist.len(), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;

pub mod cache;
pub mod dot;
pub mod generate;
pub mod metrics;
pub mod spf;
pub mod unionfind;

pub use cache::{SpfCache, SpfCacheStats};
pub use error::TopologyError;
pub use graph::{Link, LinkState, Network, NetworkBuilder};
pub use ids::{LinkId, NodeId};
