//! Property-based tests of the graph substrate.

use dgmc_topology::{generate, metrics, spf, unionfind, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_waxman() -> impl Strategy<Value = dgmc_topology::Network> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::waxman(&mut rng, n, &generate::WaxmanParams::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator's connectivity repair guarantees a single component.
    #[test]
    fn waxman_always_connected(net in arb_waxman()) {
        prop_assert!(net.is_connected());
        prop_assert_eq!(unionfind::components(&net), 1);
    }

    /// Dijkstra distances satisfy the triangle inequality over links:
    /// dist(v) <= dist(u) + cost(u,v) for every up link (u,v).
    #[test]
    fn dijkstra_relaxed_everywhere(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        for link in net.up_links() {
            let (da, db) = (tree.cost_to(link.a).unwrap(), tree.cost_to(link.b).unwrap());
            prop_assert!(db <= da + link.cost);
            prop_assert!(da <= db + link.cost);
        }
    }

    /// A reconstructed path's total link cost equals the reported distance.
    #[test]
    fn path_cost_matches_distance(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        for v in net.nodes() {
            let links = tree.links_to(v).unwrap();
            let total: u64 = links
                .iter()
                .map(|&l| net.link(l).unwrap().cost)
                .sum();
            prop_assert_eq!(total, tree.cost_to(v).unwrap());
        }
    }

    /// Shortest-path trees are deterministic: recomputation is identical.
    #[test]
    fn spf_is_deterministic(net in arb_waxman()) {
        let a = spf::shortest_path_tree(&net, NodeId(1 % net.len() as u32));
        let b = spf::shortest_path_tree(&net, NodeId(1 % net.len() as u32));
        prop_assert_eq!(a, b);
    }

    /// Hop distances are a lower bound on the number of links of any cost
    /// path and the diameter bounds every eccentricity.
    #[test]
    fn hops_bound_paths(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        let hops = spf::hop_distances(&net, NodeId(0));
        let diam = metrics::hop_diameter(&net);
        for v in net.nodes() {
            let path_links = tree.links_to(v).unwrap().len() as u32;
            prop_assert!(hops[v.index()].unwrap() <= path_links);
            prop_assert!(metrics::hop_eccentricity(&net, v) <= diam);
        }
    }

    /// All-pairs costs are symmetric and zero on the diagonal.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_is_symmetric(net in arb_waxman()) {
        let ap = spf::all_pairs_costs(&net);
        let n = net.len();
        for u in 0..n {
            prop_assert_eq!(ap[u][u], Some(0));
            for v in 0..n {
                prop_assert_eq!(ap[u][v], ap[v][u]);
            }
        }
    }
}

fn arb_mutated_case() -> impl Strategy<Value = (dgmc_topology::Network, Vec<u64>)> {
    (
        4usize..40,
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 1..12),
    )
        .prop_map(|(n, seed, muts)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            (net, muts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache equivalence (the tentpole's correctness pin): after every epoch
    /// bump of a random mutation sequence, `SpfCache` results are identical
    /// to from-scratch `shortest_path_tree` / `shortest_path_forest`.
    #[test]
    fn cache_equals_from_scratch_across_mutations((mut net, muts) in arb_mutated_case()) {
        use dgmc_topology::{LinkId, LinkState, SpfCache};
        let cache = SpfCache::new();
        let check = |net: &dgmc_topology::Network, pick: u64| -> Result<(), TestCaseError> {
            let n = net.len() as u64;
            // Root 0 is checked every round, so after each mutation its
            // lookup is a digest miss one delta away from the previous
            // generation — the repair fast path must serve it.
            let roots = [NodeId(0), NodeId((pick % n) as u32)];
            for root in roots {
                prop_assert_eq!(&*cache.tree(net, root), &spf::shortest_path_tree(net, root));
                // A repeated lookup must return the very same result.
                prop_assert_eq!(&*cache.tree(net, root), &spf::shortest_path_tree(net, root));
            }
            let sources: Vec<NodeId> = (0..=(pick % n.min(5)))
                .map(|i| NodeId(((pick / 7 + i) % n) as u32))
                .collect();
            prop_assert_eq!(
                &*cache.forest(net, &sources),
                &spf::shortest_path_forest(net, &sources)
            );
            Ok(())
        };
        check(&net, 0)?;
        for m in muts {
            let links = net.link_count() as u64;
            let id = LinkId((m % links) as u32);
            let epoch_before = net.epoch();
            if m % 3 == 0 {
                let was = net.link(id).unwrap().state;
                let flipped = match was {
                    LinkState::Up => LinkState::Down,
                    LinkState::Down => LinkState::Up,
                };
                net.set_link_state(id, flipped).unwrap();
            } else {
                // Cost churn: pick a new cost that is guaranteed to differ.
                let prev = net.link(id).unwrap().cost;
                let mut cost = 1 + (m / links) % 64;
                if cost == prev {
                    cost += 1;
                }
                net.set_link_cost(id, cost).unwrap();
            }
            prop_assert_eq!(net.epoch(), epoch_before + 1);
            check(&net, m)?;
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "repeated lookups must hit");
        prop_assert!(stats.misses > 0);
        // Every mutation leaves the prior generation one delta away, so the
        // miss path must have gone through the repair fast path.
        prop_assert!(stats.repairs > 0, "single-link churn must repair: {stats:?}");
    }
}

/// A churn script: each entry picks a link (first `u64` taken mod the link
/// count) and a mutation (second `u64`: multiples of 4 flap the state, the
/// rest set a new cost derived from the value).
fn arb_churn_case() -> impl Strategy<Value = (dgmc_topology::Network, Vec<(u64, u64)>)> {
    (
        4usize..40,
        any::<u64>(),
        prop::collection::vec((any::<u64>(), any::<u64>()), 1..20),
    )
        .prop_map(|(n, seed, muts)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            (net, muts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental repair equivalence (the tentpole's correctness pin at the
    /// algorithm layer): a tree and a forest maintained purely by
    /// [`spf::repair_shortest_path_tree`] / [`spf::repair_shortest_path_forest`]
    /// across random batched link churn stay **exactly** equal — distances,
    /// parents and tie-breaks — to from-scratch recomputation.
    #[test]
    fn repair_equals_from_scratch_across_churn((mut net, muts) in arb_churn_case()) {
        use dgmc_topology::{LinkId, LinkState};
        let root = NodeId(0);
        let sources = [NodeId(0), NodeId((net.len() / 2) as u32)];
        let mut tree = spf::shortest_path_tree(&net, root);
        let mut forest = spf::shortest_path_forest(&net, &sources);
        let effective = |net: &dgmc_topology::Network, id: LinkId| {
            let l = net.link(id).unwrap();
            l.is_up().then_some(l.cost)
        };
        for batch in muts.chunks(3) {
            // Apply the whole batch to the network, coalescing repeated hits
            // on the same link into one old→new delta entry.
            let mut changes: Vec<spf::LinkChange> = Vec::new();
            for &(pick, mutation) in batch {
                let id = LinkId((pick % net.link_count() as u64) as u32);
                let old = effective(&net, id);
                if mutation % 4 == 0 {
                    let flip = if net.link(id).unwrap().is_up() {
                        LinkState::Down
                    } else {
                        LinkState::Up
                    };
                    net.set_link_state(id, flip).unwrap();
                } else {
                    net.set_link_cost(id, 1 + mutation % 50).unwrap();
                }
                let new = effective(&net, id);
                match changes.iter_mut().find(|ch| ch.link == id) {
                    Some(ch) => ch.new_cost = new,
                    None => changes.push(spf::LinkChange {
                        link: id,
                        old_cost: old,
                        new_cost: new,
                    }),
                }
            }
            let work = spf::repair_shortest_path_tree(&net, &mut tree, &changes);
            prop_assert!(work.is_some(), "valid delta must repair: {changes:?}");
            prop_assert_eq!(&tree, &spf::shortest_path_tree(&net, root));
            let work = spf::repair_shortest_path_forest(&net, &mut forest, &sources, &changes);
            prop_assert!(work.is_some(), "valid delta must repair: {changes:?}");
            prop_assert_eq!(&forest, &spf::shortest_path_forest(&net, &sources));
        }
    }
}
