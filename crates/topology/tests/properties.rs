//! Property-based tests of the graph substrate.

use dgmc_topology::{generate, metrics, spf, unionfind, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_waxman() -> impl Strategy<Value = dgmc_topology::Network> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::waxman(&mut rng, n, &generate::WaxmanParams::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator's connectivity repair guarantees a single component.
    #[test]
    fn waxman_always_connected(net in arb_waxman()) {
        prop_assert!(net.is_connected());
        prop_assert_eq!(unionfind::components(&net), 1);
    }

    /// Dijkstra distances satisfy the triangle inequality over links:
    /// dist(v) <= dist(u) + cost(u,v) for every up link (u,v).
    #[test]
    fn dijkstra_relaxed_everywhere(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        for link in net.up_links() {
            let (da, db) = (tree.cost_to(link.a).unwrap(), tree.cost_to(link.b).unwrap());
            prop_assert!(db <= da + link.cost);
            prop_assert!(da <= db + link.cost);
        }
    }

    /// A reconstructed path's total link cost equals the reported distance.
    #[test]
    fn path_cost_matches_distance(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        for v in net.nodes() {
            let links = tree.links_to(v).unwrap();
            let total: u64 = links
                .iter()
                .map(|&l| net.link(l).unwrap().cost)
                .sum();
            prop_assert_eq!(total, tree.cost_to(v).unwrap());
        }
    }

    /// Shortest-path trees are deterministic: recomputation is identical.
    #[test]
    fn spf_is_deterministic(net in arb_waxman()) {
        let a = spf::shortest_path_tree(&net, NodeId(1 % net.len() as u32));
        let b = spf::shortest_path_tree(&net, NodeId(1 % net.len() as u32));
        prop_assert_eq!(a, b);
    }

    /// Hop distances are a lower bound on the number of links of any cost
    /// path and the diameter bounds every eccentricity.
    #[test]
    fn hops_bound_paths(net in arb_waxman()) {
        let tree = spf::shortest_path_tree(&net, NodeId(0));
        let hops = spf::hop_distances(&net, NodeId(0));
        let diam = metrics::hop_diameter(&net);
        for v in net.nodes() {
            let path_links = tree.links_to(v).unwrap().len() as u32;
            prop_assert!(hops[v.index()].unwrap() <= path_links);
            prop_assert!(metrics::hop_eccentricity(&net, v) <= diam);
        }
    }

    /// All-pairs costs are symmetric and zero on the diagonal.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_is_symmetric(net in arb_waxman()) {
        let ap = spf::all_pairs_costs(&net);
        let n = net.len();
        for u in 0..n {
            prop_assert_eq!(ap[u][u], Some(0));
            for v in 0..n {
                prop_assert_eq!(ap[u][v], ap[v][u]);
            }
        }
    }
}
