use std::fmt;

/// The three multipoint-connection types of the paper (Section 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum McType {
    /// Every member both sends and receives (teleconference); the optimal
    /// topology is a minimum Steiner tree over the members.
    Symmetric,
    /// Members are receivers of one or more sessions; non-members inject
    /// packets by unicasting to a *contact* node on the tree (CBT
    /// generalization).
    ReceiverOnly,
    /// Members are distinguished senders and/or receivers (video broadcast,
    /// remote teaching; MOSPF source-rooted trees, ATM point-to-multipoint).
    Asymmetric,
}

impl fmt::Display for McType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            McType::Symmetric => "symmetric",
            McType::ReceiverOnly => "receiver-only",
            McType::Asymmetric => "asymmetric",
        };
        f.write_str(s)
    }
}

/// A member's role within an asymmetric MC.
///
/// Symmetric MCs treat every member as [`Role::SenderReceiver`];
/// receiver-only MCs treat every member as [`Role::Receiver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Sends into the connection only.
    Sender,
    /// Receives from the connection only.
    Receiver,
    /// Both sends and receives.
    SenderReceiver,
}

impl Role {
    /// Whether the member injects traffic.
    pub fn sends(self) -> bool {
        matches!(self, Role::Sender | Role::SenderReceiver)
    }

    /// Whether the member consumes traffic.
    pub fn receives(self) -> bool {
        matches!(self, Role::Receiver | Role::SenderReceiver)
    }

    /// Merges two roles (a host may register as sender and receiver
    /// separately behind the same ingress switch).
    pub fn merge(self, other: Role) -> Role {
        match (
            self.sends() || other.sends(),
            self.receives() || other.receives(),
        ) {
            (true, true) => Role::SenderReceiver,
            (true, false) => Role::Sender,
            (false, true) => Role::Receiver,
            (false, false) => unreachable!("roles always send or receive"),
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Sender => "sender",
            Role::Receiver => "receiver",
            Role::SenderReceiver => "sender+receiver",
        };
        f.write_str(s)
    }
}

impl McType {
    /// The role every joining member implicitly assumes under this MC type
    /// when none is given explicitly.
    pub fn default_role(self) -> Role {
        match self {
            McType::Symmetric => Role::SenderReceiver,
            McType::ReceiverOnly => Role::Receiver,
            McType::Asymmetric => Role::Receiver,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_predicates() {
        assert!(Role::Sender.sends() && !Role::Sender.receives());
        assert!(!Role::Receiver.sends() && Role::Receiver.receives());
        assert!(Role::SenderReceiver.sends() && Role::SenderReceiver.receives());
    }

    #[test]
    fn role_merge_is_lub() {
        assert_eq!(Role::Sender.merge(Role::Receiver), Role::SenderReceiver);
        assert_eq!(Role::Sender.merge(Role::Sender), Role::Sender);
        assert_eq!(Role::Receiver.merge(Role::Receiver), Role::Receiver);
        assert_eq!(
            Role::SenderReceiver.merge(Role::Sender),
            Role::SenderReceiver
        );
    }

    #[test]
    fn default_roles_per_type() {
        assert_eq!(McType::Symmetric.default_role(), Role::SenderReceiver);
        assert_eq!(McType::ReceiverOnly.default_role(), Role::Receiver);
        assert_eq!(McType::Asymmetric.default_role(), Role::Receiver);
    }

    #[test]
    fn display_strings() {
        assert_eq!(McType::Symmetric.to_string(), "symmetric");
        assert_eq!(McType::ReceiverOnly.to_string(), "receiver-only");
        assert_eq!(McType::Asymmetric.to_string(), "asymmetric");
        assert_eq!(Role::SenderReceiver.to_string(), "sender+receiver");
    }
}
