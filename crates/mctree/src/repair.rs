//! Incremental repair of pruned-SPT topologies on membership change.
//!
//! A [`pruned_spt`](crate::algorithms::pruned_spt) tree is, by construction,
//! the union over its terminals of their root paths in the *canonical*
//! shortest-path tree (deterministic tie-breaks, DESIGN.md §3). That makes
//! membership deltas exact without a fallback:
//!
//! * **join** — the new topology is the old union plus the joining member's
//!   root path: [`graft_member`] inserts exactly those edges.
//! * **leave** — the new topology is the minimal subtree of the old one
//!   spanning root and the remaining terminals; since every remaining
//!   terminal's path is the unique in-tree path, repeatedly pruning
//!   non-terminal leaves ([`prune_member`]) reproduces it.
//!
//! Both operations are therefore **byte-identical** to a from-scratch
//! `pruned_spt` over the updated member set — property-pinned in
//! `tests/properties.rs` — provided the precondition holds: `tree` was
//! computed by `pruned_spt` (or a chain of these repairs) over the *same
//! network content* with the same `root`. Callers that cache trees across
//! images (e.g. the M-OSPF baseline) guard that with the image digest.
//!
//! The Steiner heuristics (KMB, Takahashi–Matsuyama) are *not* repairable
//! this way — their output is history-dependent — and the protocol's own
//! [`SphStrategy`](crate::SphStrategy) already maintains its tree
//! incrementally by consensus. This module exists for source-rooted trees
//! recomputed per (source, group), where the paper's "dynamic multicast"
//! observation (Cho & Breen) applies: repair beats recompute.

use crate::McTopology;
use dgmc_topology::{Network, NodeId, SpfCache};

/// Returns the pruned-SPT topology for `tree`'s member set plus `joining`,
/// by grafting `joining`'s canonical root path onto a clone of `tree`.
///
/// Exactly equals `pruned_spt_with(net, root, members ∪ {joining}, cache)`
/// when `tree` is the pruned SPT of `members` on the same network content.
/// An unreachable `joining` stays an isolated terminal, matching the full
/// recompute's partition behavior.
pub fn graft_member(
    net: &Network,
    root: NodeId,
    tree: &McTopology,
    joining: NodeId,
    cache: &SpfCache,
) -> McTopology {
    let mut result = tree.clone();
    let mut terminals = result.terminals().clone();
    terminals.insert(joining);
    result.set_terminals(terminals);
    if let Some(path) = cache.tree(net, root).path_to(joining) {
        for w in path.windows(2) {
            result.insert_edge(w[0], w[1]);
        }
    }
    result
}

/// Returns the pruned-SPT topology for `tree`'s member set minus `leaving`,
/// by dropping the terminal and pruning the branch that served only it.
///
/// Exactly equals `pruned_spt_with(net, root, members \ {leaving}, ..)` when
/// `tree` is the pruned SPT of `members` on the same network content: the
/// remaining terminals' root paths are untouched, and everything not on one
/// of them becomes a prunable non-terminal leaf chain. `leaving == root` is
/// a no-op (the root is always a terminal of a pruned SPT).
pub fn prune_member(root: NodeId, tree: &McTopology, leaving: NodeId) -> McTopology {
    let mut result = tree.clone();
    if leaving == root {
        return result;
    }
    let mut terminals = result.terminals().clone();
    terminals.remove(&leaving);
    terminals.insert(root);
    result.set_terminals(terminals);
    result.prune_non_terminal_leaves();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pruned_spt;
    use dgmc_topology::{generate, LinkState, NetworkBuilder};
    use std::collections::BTreeSet;

    #[test]
    fn graft_equals_full_recompute() {
        let net = generate::grid(3, 4);
        let root = NodeId(0);
        let mut members: BTreeSet<NodeId> = [NodeId(5), NodeId(11)].into();
        let mut tree = pruned_spt(&net, root, &members);
        let cache = SpfCache::new();
        for join in [NodeId(7), NodeId(3), NodeId(10)] {
            tree = graft_member(&net, root, &tree, join, &cache);
            members.insert(join);
            assert_eq!(tree, pruned_spt(&net, root, &members), "join {join}");
        }
    }

    #[test]
    fn prune_equals_full_recompute() {
        let net = generate::grid(3, 4);
        let root = NodeId(0);
        let mut members: BTreeSet<NodeId> = [NodeId(5), NodeId(7), NodeId(10), NodeId(11)].into();
        let mut tree = pruned_spt(&net, root, &members);
        for leave in [NodeId(11), NodeId(5), NodeId(7), NodeId(10)] {
            tree = prune_member(root, &tree, leave);
            members.remove(&leave);
            assert_eq!(tree, pruned_spt(&net, root, &members), "leave {leave}");
        }
        assert_eq!(tree.edge_count(), 0, "only the root terminal remains");
    }

    #[test]
    fn leaving_root_is_a_no_op() {
        let net = generate::ring(6);
        let root = NodeId(2);
        let members: BTreeSet<NodeId> = [NodeId(0), NodeId(4)].into();
        let tree = pruned_spt(&net, root, &members);
        assert_eq!(prune_member(root, &tree, root), tree);
    }

    #[test]
    fn unreachable_join_stays_isolated() {
        let mut net = NetworkBuilder::new(3).link(0, 1, 1).link(1, 2, 1).build();
        net.set_link_state(dgmc_topology::LinkId(1), LinkState::Down)
            .unwrap();
        let root = NodeId(0);
        let members: BTreeSet<NodeId> = [NodeId(1)].into();
        let tree = pruned_spt(&net, root, &members);
        let grafted = graft_member(&net, root, &tree, NodeId(2), &SpfCache::new());
        let full_members: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        assert_eq!(grafted, pruned_spt(&net, root, &full_members));
        assert!(grafted.terminals().contains(&NodeId(2)));
        assert_eq!(grafted.degree_in(NodeId(2)), 0, "no edges reach node 2");
    }
}
