//! Tree quality metrics: cost, member-to-member delay and traffic
//! concentration.
//!
//! Used by the tree-quality ablation and the CBT comparison (the paper notes
//! CBT "suffers from traffic concentration" — the metric quantifying that is
//! [`max_link_load`]).

use crate::McTopology;
use dgmc_topology::{Network, NodeId};
use std::collections::BTreeMap;

/// Total link cost of the tree on `net` (`None` if the tree is stale).
pub fn tree_cost(tree: &McTopology, net: &Network) -> Option<u64> {
    tree.total_cost(net)
}

/// Cost of the tree path between every pair of terminals, maximized.
///
/// Returns `None` for stale trees or when some terminal pair is disconnected
/// within the tree.
pub fn max_member_delay(tree: &McTopology, net: &Network) -> Option<u64> {
    let terms: Vec<NodeId> = tree.terminals().iter().copied().collect();
    let mut max = 0;
    for (i, &a) in terms.iter().enumerate() {
        let dist = tree_path_costs(tree, net, a)?;
        for &b in &terms[i + 1..] {
            max = max.max(*dist.get(&b)?);
        }
    }
    Some(max)
}

/// Cost from `from` to every node of the tree, walking tree edges only.
///
/// Returns `None` if a tree edge has no up link in `net`.
pub fn tree_path_costs(
    tree: &McTopology,
    net: &Network,
    from: NodeId,
) -> Option<BTreeMap<NodeId, u64>> {
    let mut dist = BTreeMap::new();
    if !tree.touches(from) {
        return Some(dist);
    }
    dist.insert(from, 0u64);
    let mut stack = vec![from];
    while let Some(u) = stack.pop() {
        let du = dist[&u];
        for v in tree.neighbors_in(u) {
            if dist.contains_key(&v) {
                continue;
            }
            let cost = net.link_between(u, v).filter(|l| l.is_up())?.cost;
            dist.insert(v, du + cost);
            stack.push(v);
        }
    }
    Some(dist)
}

/// Number of terminal-pair paths crossing each tree edge, and its maximum.
///
/// Models symmetric all-to-all traffic: every ordered terminal pair sends one
/// unit along its (unique) tree path. The maximum is the *traffic
/// concentration* of the tree — shared CBT-style trees concentrate load near
/// the core, source trees spread it.
pub fn link_loads(tree: &McTopology) -> BTreeMap<(NodeId, NodeId), u64> {
    let mut loads: BTreeMap<(NodeId, NodeId), u64> = tree.edges().map(|e| (e, 0)).collect();
    let terms: Vec<NodeId> = tree.terminals().iter().copied().collect();
    for (i, &a) in terms.iter().enumerate() {
        // BFS parents from a; every other terminal walks back toward a.
        let parents = bfs_parents(tree, a);
        for &b in &terms[i + 1..] {
            let mut cur = b;
            while cur != a {
                let Some(&p) = parents.get(&cur) else { break };
                let e = if cur < p { (cur, p) } else { (p, cur) };
                if let Some(l) = loads.get_mut(&e) {
                    // Both directions of the pair cross the same edge.
                    *l += 2;
                }
                cur = p;
            }
        }
    }
    loads
}

/// The maximum entry of [`link_loads`] (0 for edgeless trees).
pub fn max_link_load(tree: &McTopology) -> u64 {
    link_loads(tree).values().copied().max().unwrap_or(0)
}

fn bfs_parents(tree: &McTopology, root: NodeId) -> BTreeMap<NodeId, NodeId> {
    let mut parents = BTreeMap::new();
    let mut frontier = vec![root];
    let mut seen: std::collections::BTreeSet<NodeId> = [root].into();
    while let Some(u) = frontier.pop() {
        for v in tree.neighbors_in(u) {
            if seen.insert(v) {
                parents.insert(v, u);
                frontier.push(v);
            }
        }
    }
    parents
}

/// Ratio of `tree`'s cost to a from-scratch shortest-path-heuristic tree on
/// the same image and terminals (the *competitiveness* of a dynamically
/// maintained tree, cf. Imase–Waxman).
///
/// Returns `None` if either cost is unavailable.
pub fn competitiveness(tree: &McTopology, net: &Network) -> Option<f64> {
    let mine = tree.total_cost(net)? as f64;
    let fresh = crate::algorithms::takahashi_matsuyama(net, tree.terminals());
    let base = fresh.total_cost(net)? as f64;
    if base == 0.0 {
        return Some(1.0);
    }
    Some(mine / base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::takahashi_matsuyama;
    use dgmc_topology::generate;
    use std::collections::BTreeSet;

    fn terminals(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn delay_on_a_path_tree() {
        let net = generate::path(5);
        let tree = takahashi_matsuyama(&net, &terminals(&[0, 4]));
        assert_eq!(max_member_delay(&tree, &net), Some(4));
        assert_eq!(tree_cost(&tree, &net), Some(4));
    }

    #[test]
    fn path_costs_walk_tree_edges_only() {
        // Ring: tree uses the short side; costs follow tree, not graph.
        let net = generate::ring(6);
        let tree = takahashi_matsuyama(&net, &terminals(&[0, 2]));
        let d = tree_path_costs(&tree, &net, NodeId(0)).unwrap();
        assert_eq!(d[&NodeId(2)], 2);
        assert!(!d.contains_key(&NodeId(4)), "off-tree nodes unvisited");
    }

    #[test]
    fn star_tree_concentrates_load_at_center_edges() {
        let net = generate::star(5); // center 0, leaves 1-4
        let tree = takahashi_matsuyama(&net, &terminals(&[1, 2, 3, 4]));
        let loads = link_loads(&tree);
        // Each leaf edge carries the 3 pairs involving that leaf, both ways.
        assert!(loads.values().all(|&l| l == 6));
        assert_eq!(max_link_load(&tree), 6);
    }

    #[test]
    fn loads_zero_without_pairs() {
        let net = generate::path(3);
        let tree = takahashi_matsuyama(&net, &terminals(&[0]));
        assert_eq!(max_link_load(&tree), 0);
        let pair = takahashi_matsuyama(&net, &terminals(&[0, 1]));
        assert_eq!(max_link_load(&pair), 2);
    }

    #[test]
    fn fresh_tree_is_competitive_with_itself() {
        let net = generate::grid(3, 3);
        let tree = takahashi_matsuyama(&net, &terminals(&[0, 8, 6]));
        let c = competitiveness(&tree, &net).unwrap();
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_tree_has_competitiveness_above_one() {
        // Build a deliberately bad tree: detour the long way around a ring.
        let net = generate::ring(6);
        let mut bad = McTopology::new(terminals(&[0, 2]));
        bad.insert_edge(NodeId(0), NodeId(5));
        bad.insert_edge(NodeId(5), NodeId(4));
        bad.insert_edge(NodeId(4), NodeId(3));
        bad.insert_edge(NodeId(3), NodeId(2));
        let c = competitiveness(&bad, &net).unwrap();
        assert!(c > 1.5);
    }

    #[test]
    fn stale_tree_yields_none() {
        let net = generate::path(3);
        let mut stale = McTopology::new(terminals(&[0, 2]));
        stale.insert_edge(NodeId(0), NodeId(2));
        assert_eq!(tree_cost(&stale, &net), None);
        assert_eq!(max_member_delay(&stale, &net), None);
        assert_eq!(tree_path_costs(&stale, &net, NodeId(0)), None);
    }
}
