//! Capacity-aware MC topologies and admission control.
//!
//! The paper's second argument against MOSPF-style on-demand computation:
//! "an on-demand approach cannot be applied if quality of service (QoS)
//! negotiation is needed prior to data transmission". D-GMC computes and
//! installs topologies *before* data flows, so bandwidth can be negotiated
//! per connection. This module provides the pieces:
//!
//! * [`CapacityPlan`] — per-link capacities and the reservation ledger,
//! * [`constrained_steiner`] — the shortest-path Steiner heuristic over the
//!   residual network (links with insufficient headroom are excluded),
//! * [`CapacityPlan::admit`] — negotiate-then-install: compute a feasible
//!   tree, reserve its bandwidth atomically, or reject the connection.

use crate::{algorithms, McTopology};
use dgmc_topology::{Network, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Why a connection could not be admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// No tree spanning the members exists in the residual network.
    Infeasible {
        /// A terminal that could not be spanned.
        unspanned: NodeId,
    },
    /// The connection id already holds a reservation.
    AlreadyAdmitted,
    /// Zero members were requested.
    EmptyMembership,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Infeasible { unspanned } => {
                write!(f, "no residual-capacity tree spans terminal {unspanned}")
            }
            AdmissionError::AlreadyAdmitted => {
                f.write_str("connection already holds a reservation")
            }
            AdmissionError::EmptyMembership => f.write_str("cannot admit an empty member set"),
        }
    }
}

impl Error for AdmissionError {}

/// An arithmetic inconsistency the reservation ledger refused to absorb.
///
/// Both variants used to be silent `saturating_sub` clamps; clamping hides
/// real accounting bugs (a reservation released twice, a capacity lowered
/// under live traffic) behind a plausible-looking `0`. The plan now refuses
/// the operation, leaves the ledger untouched, and records the refusal in
/// [`CapacityPlan::ledger_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LedgerError {
    /// Lowering a link's capacity below its reserved usage was refused.
    WouldOvercommit {
        /// The link, in normalized `(min, max)` form.
        link: (NodeId, NodeId),
        /// The capacity the caller tried to set.
        requested: u64,
        /// Bandwidth currently reserved on the link.
        used: u64,
    },
    /// Releasing a reservation would drive a link's usage negative.
    ReleaseUnderflow {
        /// The connection being released.
        connection: u32,
        /// The link, in normalized `(min, max)` form.
        link: (NodeId, NodeId),
        /// Bandwidth currently reserved on the link.
        used: u64,
        /// The reservation's demand, which exceeds `used`.
        demand: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::WouldOvercommit {
                link,
                requested,
                used,
            } => write!(
                f,
                "capacity {requested} on link ({}, {}) is below reserved usage {used}",
                link.0, link.1
            ),
            LedgerError::ReleaseUnderflow {
                connection,
                link,
                used,
                demand,
            } => write!(
                f,
                "releasing connection {connection} would free {demand} on link ({}, {}) with only {used} reserved",
                link.0, link.1
            ),
        }
    }
}

impl Error for LedgerError {}

/// Per-link capacities plus the ledger of bandwidth reservations held by
/// admitted connections.
///
/// Keys are normalized `(min, max)` endpoint pairs, matching
/// [`McTopology::edges`].
///
/// # Examples
///
/// ```
/// use dgmc_mctree::qos::CapacityPlan;
/// use dgmc_topology::{generate, NodeId};
/// use std::collections::BTreeSet;
///
/// let net = generate::path(3);
/// let mut plan = CapacityPlan::uniform(&net, 10);
/// let members: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into();
/// let tree = plan.admit(&net, 1, &members, 8).unwrap();
/// assert_eq!(tree.edge_count(), 2);
/// // Only 2 units left on the path: a second 8-unit conference is refused.
/// assert!(plan.admit(&net, 2, &members, 8).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapacityPlan {
    capacity: BTreeMap<(NodeId, NodeId), u64>,
    /// connection id -> (demand, edges reserved).
    reservations: BTreeMap<u32, (u64, Vec<(NodeId, NodeId)>)>,
    /// cached per-edge usage.
    used: BTreeMap<(NodeId, NodeId), u64>,
    /// Refused operations, in order — the audit trail QoS negotiation
    /// needs ("negotiation prior to data transmission", paper §1).
    ledger_log: Vec<LedgerError>,
}

fn normalize(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl CapacityPlan {
    /// Gives every up link of `net` the same `capacity`.
    pub fn uniform(net: &Network, capacity: u64) -> CapacityPlan {
        let capacity_map = net
            .up_links()
            .map(|l| (normalize(l.a, l.b), capacity))
            .collect();
        CapacityPlan {
            capacity: capacity_map,
            reservations: BTreeMap::new(),
            used: BTreeMap::new(),
            ledger_log: Vec::new(),
        }
    }

    /// Overrides one link's capacity.
    ///
    /// # Errors
    ///
    /// [`LedgerError::WouldOvercommit`] (also recorded in
    /// [`CapacityPlan::ledger_log`]) if `capacity` is below the link's
    /// reserved usage; release the holders first. The plan is unchanged.
    pub fn set_capacity(&mut self, a: NodeId, b: NodeId, capacity: u64) -> Result<(), LedgerError> {
        let link = normalize(a, b);
        let used = self.used.get(&link).copied().unwrap_or(0);
        if capacity < used {
            let err = LedgerError::WouldOvercommit {
                link,
                requested: capacity,
                used,
            };
            self.ledger_log.push(err.clone());
            return Err(err);
        }
        self.capacity.insert(link, capacity);
        Ok(())
    }

    /// Residual capacity of the link `(a, b)` (0 for unknown links).
    ///
    /// # Panics
    ///
    /// Panics if the ledger records more usage than capacity on the link —
    /// impossible through this type's API (every mutation is checked), so a
    /// panic here means memory corruption, not an operational condition.
    pub fn residual(&self, a: NodeId, b: NodeId) -> u64 {
        let key = normalize(a, b);
        let cap = self.capacity.get(&key).copied().unwrap_or(0);
        let used = self.used.get(&key).copied().unwrap_or(0);
        cap.checked_sub(used)
            .expect("ledger invariant: reserved usage never exceeds capacity")
    }

    /// Refused operations ([`LedgerError`]s), oldest first.
    pub fn ledger_log(&self) -> &[LedgerError] {
        &self.ledger_log
    }

    /// Number of admitted connections.
    pub fn admitted_count(&self) -> usize {
        self.reservations.len()
    }

    /// Returns `true` if `connection` holds a reservation.
    pub fn is_admitted(&self, connection: u32) -> bool {
        self.reservations.contains_key(&connection)
    }

    /// Negotiates admission of `connection`: computes a tree spanning
    /// `members` whose links all have at least `demand` residual capacity,
    /// and reserves `demand` on each of its edges.
    ///
    /// # Errors
    ///
    /// See [`AdmissionError`]. On error the plan is unchanged.
    pub fn admit(
        &mut self,
        net: &Network,
        connection: u32,
        members: &BTreeSet<NodeId>,
        demand: u64,
    ) -> Result<McTopology, AdmissionError> {
        if self.is_admitted(connection) {
            return Err(AdmissionError::AlreadyAdmitted);
        }
        if members.is_empty() {
            return Err(AdmissionError::EmptyMembership);
        }
        let tree = constrained_steiner(net, self, members, demand);
        if let Err(unspanned) = spans(&tree, members) {
            return Err(AdmissionError::Infeasible { unspanned });
        }
        let edges: Vec<(NodeId, NodeId)> = tree.edges().collect();
        for &e in &edges {
            *self.used.entry(e).or_insert(0) += demand;
        }
        self.reservations.insert(connection, (demand, edges));
        Ok(tree)
    }

    /// Releases `connection`'s reservation; `Ok(true)` if it existed.
    ///
    /// # Errors
    ///
    /// [`LedgerError::ReleaseUnderflow`] (also recorded in
    /// [`CapacityPlan::ledger_log`]) if freeing the reservation would drive
    /// any link's usage negative — double accounting the old
    /// `saturating_sub` silently clamped. The plan is unchanged, the
    /// reservation stays held.
    pub fn release(&mut self, connection: u32) -> Result<bool, LedgerError> {
        let Some((demand, edges)) = self.reservations.get(&connection) else {
            return Ok(false);
        };
        // Validate every edge before touching any, so a refusal is atomic.
        for &link in edges {
            let used = self.used.get(&link).copied().unwrap_or(0);
            if used.checked_sub(*demand).is_none() {
                let err = LedgerError::ReleaseUnderflow {
                    connection,
                    link,
                    used,
                    demand: *demand,
                };
                self.ledger_log.push(err.clone());
                return Err(err);
            }
        }
        let (demand, edges) = self
            .reservations
            .remove(&connection)
            .expect("present: checked above");
        for e in edges {
            let u = self.used.get_mut(&e).expect("validated above");
            *u -= demand;
        }
        Ok(true)
    }
}

fn spans(tree: &McTopology, members: &BTreeSet<NodeId>) -> Result<(), NodeId> {
    if members.len() <= 1 {
        return Ok(());
    }
    let first = *members.iter().next().expect("non-empty");
    let reach = tree.hops_from(first);
    for &m in members {
        if !reach.contains_key(&m) {
            return Err(m);
        }
    }
    Ok(())
}

/// The shortest-path Steiner heuristic over the *residual* network: links
/// whose residual capacity under `plan` is below `demand` are excluded.
///
/// Members that cannot be spanned with the required headroom are left
/// isolated (callers check with [`CapacityPlan::admit`] or
/// [`McTopology::validate`]).
pub fn constrained_steiner(
    net: &Network,
    plan: &CapacityPlan,
    members: &BTreeSet<NodeId>,
    demand: u64,
) -> McTopology {
    // Build the residual view: same nodes, only links with headroom.
    let mut residual = Network::with_nodes(net.len());
    for l in net.up_links() {
        if plan.residual(l.a, l.b) >= demand {
            residual
                .add_link(l.a, l.b, l.cost)
                .expect("links unique in source network");
        }
    }
    algorithms::takahashi_matsuyama(&residual, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    fn members(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn admission_reserves_and_release_restores() {
        let net = generate::path(4);
        let mut plan = CapacityPlan::uniform(&net, 10);
        let tree = plan.admit(&net, 1, &members(&[0, 3]), 4).unwrap();
        assert_eq!(tree.edge_count(), 3);
        assert_eq!(plan.residual(NodeId(0), NodeId(1)), 6);
        assert!(plan.is_admitted(1));
        assert!(plan.release(1).unwrap());
        assert_eq!(plan.residual(NodeId(0), NodeId(1)), 10);
        assert!(!plan.release(1).unwrap(), "double release is a no-op");
    }

    #[test]
    fn saturated_links_force_detours() {
        // Ring: short side 0-1-2 saturates; next conference detours.
        let net = generate::ring(6);
        let mut plan = CapacityPlan::uniform(&net, 10);
        let t1 = plan.admit(&net, 1, &members(&[0, 2]), 8).unwrap();
        assert!(t1.contains_edge(NodeId(0), NodeId(1)), "short side first");
        let t2 = plan.admit(&net, 2, &members(&[0, 2]), 8).unwrap();
        assert!(
            !t2.contains_edge(NodeId(0), NodeId(1)),
            "second conference detours around the saturated side"
        );
        assert_eq!(t2.edge_count(), 4);
    }

    #[test]
    fn admission_fails_cleanly_when_no_capacity_remains() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.admit(&net, 1, &members(&[0, 2]), 6).unwrap();
        let err = plan.admit(&net, 2, &members(&[0, 2]), 6).unwrap_err();
        assert!(matches!(err, AdmissionError::Infeasible { .. }));
        // The failed attempt reserved nothing.
        assert_eq!(plan.residual(NodeId(0), NodeId(1)), 4);
        assert_eq!(plan.admitted_count(), 1);
    }

    #[test]
    fn duplicate_and_empty_admissions_rejected() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.admit(&net, 1, &members(&[0, 2]), 1).unwrap();
        assert_eq!(
            plan.admit(&net, 1, &members(&[0, 2]), 1).unwrap_err(),
            AdmissionError::AlreadyAdmitted
        );
        assert_eq!(
            plan.admit(&net, 2, &members(&[]), 1).unwrap_err(),
            AdmissionError::EmptyMembership
        );
    }

    #[test]
    fn heterogeneous_capacities_steer_trees() {
        // Square 0-1-2-3-0; the 0-1 link is thin.
        let net = generate::ring(4);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.set_capacity(NodeId(0), NodeId(1), 2).unwrap();
        let tree = plan
            .admit(&net, 1, &members(&[0, 1]), 5)
            .expect("detour exists");
        assert!(!tree.contains_edge(NodeId(0), NodeId(1)));
        assert_eq!(tree.edge_count(), 3, "the long way around");
    }

    #[test]
    fn released_capacity_is_reusable() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.admit(&net, 1, &members(&[0, 2]), 10).unwrap();
        assert!(plan.admit(&net, 2, &members(&[0, 2]), 1).is_err());
        plan.release(1).unwrap();
        assert!(plan.admit(&net, 2, &members(&[0, 2]), 10).is_ok());
    }

    #[test]
    fn lowering_capacity_below_usage_is_refused_and_logged() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.admit(&net, 1, &members(&[0, 2]), 6).unwrap();
        let err = plan.set_capacity(NodeId(0), NodeId(1), 4).unwrap_err();
        assert_eq!(
            err,
            LedgerError::WouldOvercommit {
                link: (NodeId(0), NodeId(1)),
                requested: 4,
                used: 6,
            }
        );
        // Refusal is atomic and audited; the old capacity still stands.
        assert_eq!(plan.residual(NodeId(0), NodeId(1)), 4);
        assert_eq!(plan.ledger_log(), &[err]);
        // Raising (or matching usage) is fine.
        plan.set_capacity(NodeId(0), NodeId(1), 6).unwrap();
        assert_eq!(plan.residual(NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn release_underflow_is_a_checked_error_not_a_silent_clamp() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 10);
        plan.admit(&net, 1, &members(&[0, 2]), 6).unwrap();
        // Simulate ledger drift (impossible through the public API): the
        // usage counter lost part of the reservation. The old code's
        // `saturating_sub` would clamp to 0 and corrupt headroom silently.
        *plan.used.get_mut(&(NodeId(0), NodeId(1))).unwrap() = 2;
        let err = plan.release(1).unwrap_err();
        assert_eq!(
            err,
            LedgerError::ReleaseUnderflow {
                connection: 1,
                link: (NodeId(0), NodeId(1)),
                used: 2,
                demand: 6,
            }
        );
        // Atomic refusal: the reservation is still held, nothing freed.
        assert!(plan.is_admitted(1));
        assert_eq!(plan.residual(NodeId(1), NodeId(2)), 4);
        assert_eq!(plan.ledger_log(), &[err]);
    }

    #[test]
    fn single_member_is_always_admissible() {
        let net = generate::path(3);
        let mut plan = CapacityPlan::uniform(&net, 0);
        let tree = plan.admit(&net, 1, &members(&[1]), 99).unwrap();
        assert_eq!(tree.edge_count(), 0);
    }
}
