use crate::{algorithms, McTopology};
use dgmc_topology::{Network, NodeId, SpfCache};
use std::collections::BTreeSet;
use std::fmt;

/// A pluggable, deterministic MC topology computation strategy.
///
/// This is the seam the paper designs for: "the D-GMC protocol is designed
/// to be independent of the underlying topology computation algorithm", with
/// the distinction between *incremental update* and *from-scratch*
/// computation (Section 3.5). The D-GMC switch hands the strategy its local
/// network image, the current member-derived terminal set and (if any) the
/// currently installed topology; the strategy returns the new proposal.
///
/// Implementations **must** be deterministic functions of their inputs:
/// concurrent proposals carrying the same timestamp are only consistent
/// because every switch computes the same topology from the same image.
pub trait McAlgorithm: fmt::Debug {
    /// Computes a topology spanning `terminals` over the image `net`,
    /// optionally starting from the `previous` installed topology, memoizing
    /// shortest-path work in `cache`.
    ///
    /// The cache is an optimization only: for a fixed image and terminal set
    /// the result must be identical whatever the cache contains (shared,
    /// fresh or disabled), since protocol consensus depends on every switch
    /// proposing the same topology.
    fn compute_with(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
        previous: Option<&McTopology>,
        cache: &SpfCache,
    ) -> McTopology;

    /// [`compute_with`](Self::compute_with) over a throwaway, disabled cache
    /// (from-scratch computation; the historical entry point).
    fn compute(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
        previous: Option<&McTopology>,
    ) -> McTopology {
        self.compute_with(net, terminals, previous, &SpfCache::disabled())
    }

    /// Short human-readable strategy name (for reports).
    fn name(&self) -> &'static str;
}

/// Shortest-path heuristic with incremental updates.
///
/// Membership deltas are applied with [`algorithms::greedy_join`] /
/// [`algorithms::greedy_leave`]; if the previous topology is unusable on the
/// current image (failed link, disconnection) the tree is rebuilt from
/// scratch with [`algorithms::takahashi_matsuyama`]. This is the default
/// strategy of the reproduction, matching the paper's recommendation to
/// prefer incremental updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SphStrategy;

impl SphStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        SphStrategy
    }
}

impl McAlgorithm for SphStrategy {
    fn compute_with(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
        previous: Option<&McTopology>,
        cache: &SpfCache,
    ) -> McTopology {
        if let Some(prev) = previous {
            let mut tree = prev.clone();
            // Apply leaves first (may free relays), then joins; both in
            // ascending id order for determinism.
            for &gone in prev.terminals().difference(terminals) {
                tree = algorithms::greedy_leave(&tree, gone);
            }
            for &new in terminals.difference(prev.terminals()) {
                tree = algorithms::greedy_join_with(net, &tree, new, cache);
            }
            if tree.validate(net, terminals).is_ok() {
                return tree;
            }
            // Adverse network change: fall through to a from-scratch build.
        }
        algorithms::takahashi_matsuyama_with(net, terminals, cache)
    }

    fn name(&self) -> &'static str {
        "sph-incremental"
    }
}

/// From-scratch Kou–Markowsky–Berman strategy.
///
/// Always rebuilds; used for tree-quality comparisons and the ablation of
/// incremental versus from-scratch computation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KmbStrategy;

impl KmbStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        KmbStrategy
    }
}

impl McAlgorithm for KmbStrategy {
    fn compute_with(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
        _previous: Option<&McTopology>,
        cache: &SpfCache,
    ) -> McTopology {
        algorithms::kmb_with(net, terminals, cache)
    }

    fn name(&self) -> &'static str {
        "kmb-scratch"
    }
}

/// Delay-bounded strategy: every member's in-tree path cost from the
/// smallest member id (the deterministic "center") stays within `bound`.
///
/// Falls back to the plain shortest-path heuristic when the bound is
/// infeasible on the current image — the connection stays up, degraded,
/// rather than failing (admission-time feasibility is
/// [`crate::qos::CapacityPlan::admit`]'s job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBoundedStrategy {
    bound: u64,
}

impl DelayBoundedStrategy {
    /// Creates the strategy with the given delay bound (in link-cost units).
    pub fn new(bound: u64) -> Self {
        DelayBoundedStrategy { bound }
    }

    /// The configured bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }
}

impl McAlgorithm for DelayBoundedStrategy {
    fn compute_with(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
        _previous: Option<&McTopology>,
        cache: &SpfCache,
    ) -> McTopology {
        let Some(&root) = terminals.iter().next() else {
            return McTopology::empty();
        };
        let others: BTreeSet<NodeId> = terminals.iter().copied().skip(1).collect();
        match algorithms::delay_bounded_with(net, root, &others, self.bound, cache) {
            Ok(tree) => tree,
            Err(_) => algorithms::takahashi_matsuyama_with(net, terminals, cache),
        }
    }

    fn name(&self) -> &'static str {
        "delay-bounded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::{generate, LinkState};

    fn terminals(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn sph_incremental_join_matches_greedy() {
        let net = generate::path(6);
        let strat = SphStrategy::new();
        let t0 = strat.compute(&net, &terminals(&[0, 2]), None);
        let t1 = strat.compute(&net, &terminals(&[0, 2, 5]), Some(&t0));
        assert_eq!(t1.validate(&net, &terminals(&[0, 2, 5])), Ok(()));
        assert_eq!(t1.edge_count(), 5);
    }

    #[test]
    fn sph_leave_then_join_in_one_delta() {
        let net = generate::grid(3, 3);
        let strat = SphStrategy::new();
        let t0 = strat.compute(&net, &terminals(&[0, 4, 8]), None);
        let t1 = strat.compute(&net, &terminals(&[0, 6, 8]), Some(&t0));
        assert_eq!(t1.validate(&net, &terminals(&[0, 6, 8])), Ok(()));
    }

    #[test]
    fn sph_rebuilds_after_link_failure() {
        let mut net = generate::ring(6);
        let strat = SphStrategy::new();
        let want = terminals(&[0, 2]);
        let t0 = strat.compute(&net, &want, None);
        assert!(t0.contains_edge(NodeId(0), NodeId(1)));
        // Cut 0-1: the installed tree is now invalid on the new image.
        let l = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        net.set_link_state(l, LinkState::Down).unwrap();
        let t1 = strat.compute(&net, &want, Some(&t0));
        assert_eq!(t1.validate(&net, &want), Ok(()));
        assert!(
            !t1.contains_edge(NodeId(0), NodeId(1)),
            "rebuilt tree avoids the dead link"
        );
    }

    #[test]
    fn kmb_strategy_ignores_previous() {
        let net = generate::grid(3, 3);
        let strat = KmbStrategy::new();
        let want = terminals(&[0, 8]);
        let from_none = strat.compute(&net, &want, None);
        let junk = McTopology::new(terminals(&[0, 8]));
        let from_prev = strat.compute(&net, &want, Some(&junk));
        assert_eq!(from_none, from_prev);
    }

    #[test]
    fn strategies_have_names() {
        assert_eq!(SphStrategy::new().name(), "sph-incremental");
        assert_eq!(KmbStrategy::new().name(), "kmb-scratch");
    }

    #[test]
    fn sph_handles_total_departure() {
        let net = generate::path(4);
        let strat = SphStrategy::new();
        let t0 = strat.compute(&net, &terminals(&[0, 3]), None);
        let t1 = strat.compute(&net, &terminals(&[]), Some(&t0));
        assert_eq!(t1.edge_count(), 0);
        assert!(t1.terminals().is_empty());
    }

    #[test]
    fn delay_bounded_strategy_meets_bound_or_degrades() {
        let net = generate::ring(8);
        let strat = DelayBoundedStrategy::new(4);
        assert_eq!(strat.bound(), 4);
        assert_eq!(strat.name(), "delay-bounded");
        let want = terminals(&[0, 3, 5]);
        let tree = strat.compute(&net, &want, None);
        assert_eq!(tree.validate(&net, &want), Ok(()));
        let delays = crate::metrics::tree_path_costs(&tree, &net, NodeId(0)).unwrap();
        for &t in &want {
            assert!(delays[&t] <= 4, "{t} at {}", delays[&t]);
        }
        // Infeasible bound: gracefully degrades to plain SPH.
        let strict = DelayBoundedStrategy::new(1);
        let degraded = strict.compute(&net, &want, None);
        assert_eq!(degraded.validate(&net, &want), Ok(()));
        // Empty membership.
        assert!(strat.compute(&net, &terminals(&[]), None).is_empty());
    }

    #[test]
    fn sph_invalid_previous_falls_back_cleanly() {
        // A previous topology referencing links that never existed triggers
        // the from-scratch path.
        let net = generate::path(4);
        let strat = SphStrategy::new();
        let mut bogus = McTopology::new(terminals(&[0, 3]));
        bogus.insert_edge(NodeId(0), NodeId(3));
        let t = strat.compute(&net, &terminals(&[0, 3]), Some(&bogus));
        assert_eq!(t.validate(&net, &terminals(&[0, 3])), Ok(()));
        assert_eq!(t.edge_count(), 3);
    }
}
