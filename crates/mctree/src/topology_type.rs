use dgmc_topology::{Network, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A multipoint-connection topology: the tree subgraph a proposal encodes.
///
/// This is the `P` component of an MC LSA — "a complete topological
/// description of the MC". Edges are stored as normalized `(min, max)`
/// endpoint pairs of the switch graph; the structure is independent of any
/// particular network instance so it can be flooded and compared for
/// equality.
///
/// # Examples
///
/// ```
/// use dgmc_mctree::McTopology;
/// use dgmc_topology::NodeId;
/// use std::collections::BTreeSet;
///
/// let terminals: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into();
/// let mut t = McTopology::new(terminals);
/// t.insert_edge(NodeId(0), NodeId(1));
/// t.insert_edge(NodeId(2), NodeId(1));
/// assert!(t.is_tree());
/// assert_eq!(t.neighbors_in(NodeId(1)), vec![NodeId(0), NodeId(2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct McTopology {
    edges: BTreeSet<(NodeId, NodeId)>,
    terminals: BTreeSet<NodeId>,
}

/// Why a topology failed validation against a network and terminal set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyValidationError {
    /// An edge of the topology has no up link in the network.
    MissingEdge(NodeId, NodeId),
    /// The edge set contains a cycle.
    Cycle,
    /// The touched nodes do not form a single connected component.
    Disconnected,
    /// A terminal is not covered by the topology.
    TerminalNotSpanned(NodeId),
}

impl fmt::Display for TopologyValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyValidationError::MissingEdge(a, b) => {
                write!(f, "topology edge ({a}, {b}) has no up link in the network")
            }
            TopologyValidationError::Cycle => f.write_str("topology contains a cycle"),
            TopologyValidationError::Disconnected => f.write_str("topology is disconnected"),
            TopologyValidationError::TerminalNotSpanned(n) => {
                write!(f, "terminal {n} is not spanned by the topology")
            }
        }
    }
}

impl Error for TopologyValidationError {}

impl McTopology {
    /// Creates an edgeless topology over the given terminals.
    ///
    /// With zero terminals this is the *empty* topology (a destroyed MC);
    /// with one terminal it is the singleton tree.
    pub fn new(terminals: BTreeSet<NodeId>) -> Self {
        McTopology {
            edges: BTreeSet::new(),
            terminals,
        }
    }

    /// Creates the empty topology (no terminals, no edges).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a topology from an edge list and terminal set.
    pub fn from_edges<I>(edges: I, terminals: BTreeSet<NodeId>) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut t = Self::new(terminals);
        for (a, b) in edges {
            t.insert_edge(a, b);
        }
        t
    }

    /// Adds an edge (normalized); ignores self-loops and duplicates.
    pub fn insert_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        self.edges.insert(normalize(a, b))
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.edges.remove(&normalize(a, b))
    }

    /// Returns `true` if the (normalized) edge is part of the topology.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&normalize(a, b))
    }

    /// Iterates over the normalized edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The terminal (member) set this topology was computed for.
    pub fn terminals(&self) -> &BTreeSet<NodeId> {
        &self.terminals
    }

    /// Replaces the terminal set (used by incremental updates).
    pub fn set_terminals(&mut self, terminals: BTreeSet<NodeId>) {
        self.terminals = terminals;
    }

    /// All nodes touched by the topology: edge endpoints plus terminals.
    pub fn nodes(&self) -> BTreeSet<NodeId> {
        let mut nodes: BTreeSet<NodeId> = self.terminals.clone();
        for &(a, b) in &self.edges {
            nodes.insert(a);
            nodes.insert(b);
        }
        nodes
    }

    /// Returns `true` if `n` is a terminal or an edge endpoint.
    pub fn touches(&self, n: NodeId) -> bool {
        self.terminals.contains(&n) || self.edges.iter().any(|&(a, b)| a == n || b == n)
    }

    /// The topology neighbors of `n`, sorted.
    pub fn neighbors_in(&self, n: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == n {
                    Some(b)
                } else if b == n {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    /// Degree of `n` within the topology.
    pub fn degree_in(&self, n: NodeId) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == n || b == n)
            .count()
    }

    /// Returns `true` if the topology has neither edges nor terminals.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.terminals.is_empty()
    }

    /// Structural tree check: connected and acyclic over the touched nodes.
    ///
    /// The empty topology and singletons count as trees.
    pub fn is_tree(&self) -> bool {
        let nodes = self.nodes();
        if nodes.is_empty() {
            return true;
        }
        if self.edges.len() + 1 != nodes.len() {
            return false;
        }
        self.connected_over(&nodes)
    }

    fn connected_over(&self, nodes: &BTreeSet<NodeId>) -> bool {
        let Some(&start) = nodes.iter().next() else {
            return true;
        };
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for v in self.neighbors_in(u) {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == nodes.len()
    }

    /// Sum of link costs of the topology's edges within `net`.
    ///
    /// Returns `None` if any edge has no up link in the network (the
    /// topology is stale with respect to this image).
    pub fn total_cost(&self, net: &Network) -> Option<u64> {
        let mut sum = 0u64;
        for &(a, b) in &self.edges {
            let link = net.link_between(a, b).filter(|l| l.is_up())?;
            sum += link.cost;
        }
        Some(sum)
    }

    /// Full validation against a network image and an expected terminal set:
    /// every edge exists and is up, the structure is a tree, and every
    /// terminal is spanned.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyValidationError`] found.
    pub fn validate(
        &self,
        net: &Network,
        terminals: &BTreeSet<NodeId>,
    ) -> Result<(), TopologyValidationError> {
        for &(a, b) in &self.edges {
            if net.link_between(a, b).filter(|l| l.is_up()).is_none() {
                return Err(TopologyValidationError::MissingEdge(a, b));
            }
        }
        let nodes = self.nodes();
        if !nodes.is_empty() {
            if self.edges.len() + 1 > nodes.len() {
                return Err(TopologyValidationError::Cycle);
            }
            if !self.connected_over(&nodes) {
                return Err(TopologyValidationError::Disconnected);
            }
            // connected + |E| <= |V|-1 implies tree; < is impossible then.
        }
        for &t in terminals {
            if !nodes.contains(&t) {
                return Err(TopologyValidationError::TerminalNotSpanned(t));
            }
        }
        Ok(())
    }

    /// Distance (in topology hops) from every node of the tree to `from`.
    ///
    /// Used by forwarding tests and delay metrics.
    pub fn hops_from(&self, from: NodeId) -> BTreeMap<NodeId, u32> {
        let mut dist = BTreeMap::new();
        if !self.touches(from) {
            return dist;
        }
        dist.insert(from, 0);
        let mut frontier = vec![from];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for u in frontier {
                for v in self.neighbors_in(u) {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                        e.insert(d);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    /// Removes non-terminal leaves repeatedly (standard Steiner pruning).
    pub fn prune_non_terminal_leaves(&mut self) {
        loop {
            let nodes = self.nodes();
            let prune: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|n| !self.terminals.contains(n) && self.degree_in(*n) <= 1)
                .collect();
            if prune.is_empty() {
                return;
            }
            for n in prune {
                let nbrs = self.neighbors_in(n);
                for v in nbrs {
                    self.remove_edge(n, v);
                }
            }
        }
    }
}

impl McTopology {
    /// Renders the topology over its network as a Graphviz document: tree
    /// edges bold red, terminals filled (see [`dgmc_topology::dot`]).
    pub fn to_dot(&self, net: &Network, name: &str) -> String {
        let edges: Vec<(NodeId, NodeId)> = self.edges().collect();
        let nodes: Vec<NodeId> = self.terminals().iter().copied().collect();
        dgmc_topology::dot::to_dot_highlighted(net, name, &edges, &nodes)
    }
}

impl fmt::Display for McTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mc-topology({} terminals, {} edges)",
            self.terminals.len(),
            self.edges.len()
        )
    }
}

fn normalize(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    fn terminals(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn edges_normalize_and_dedup() {
        let mut t = McTopology::empty();
        assert!(t.insert_edge(NodeId(2), NodeId(1)));
        assert!(!t.insert_edge(NodeId(1), NodeId(2)), "duplicate");
        assert!(!t.insert_edge(NodeId(1), NodeId(1)), "self-loop ignored");
        assert!(t.contains_edge(NodeId(1), NodeId(2)));
        assert_eq!(t.edge_count(), 1);
        assert!(t.remove_edge(NodeId(2), NodeId(1)));
        assert!(!t.remove_edge(NodeId(2), NodeId(1)));
    }

    #[test]
    fn tree_checks() {
        let mut t = McTopology::new(terminals(&[0, 2]));
        assert!(!t.is_tree(), "two isolated terminals are disconnected");
        t.insert_edge(NodeId(0), NodeId(1));
        t.insert_edge(NodeId(1), NodeId(2));
        assert!(t.is_tree());
        t.insert_edge(NodeId(0), NodeId(2));
        assert!(!t.is_tree(), "cycle");
    }

    #[test]
    fn empty_and_singleton_are_trees() {
        assert!(McTopology::empty().is_tree());
        assert!(McTopology::new(terminals(&[3])).is_tree());
    }

    #[test]
    fn validate_against_network() {
        let net = generate::path(4); // 0-1-2-3
        let want = terminals(&[0, 3]);
        let good = McTopology::from_edges(
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ],
            want.clone(),
        );
        assert_eq!(good.validate(&net, &want), Ok(()));

        let missing = McTopology::from_edges([(NodeId(0), NodeId(3))], want.clone());
        assert_eq!(
            missing.validate(&net, &want),
            Err(TopologyValidationError::MissingEdge(NodeId(0), NodeId(3)))
        );

        let unspanned = McTopology::from_edges([(NodeId(0), NodeId(1))], want.clone());
        assert!(matches!(
            unspanned.validate(&net, &want),
            Err(TopologyValidationError::Disconnected)
                | Err(TopologyValidationError::TerminalNotSpanned(_))
        ));
    }

    #[test]
    fn validate_detects_cycle_and_disconnection() {
        let net = generate::ring(4);
        let want = terminals(&[0]);
        let cyclic = McTopology::from_edges(
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(0)),
            ],
            want.clone(),
        );
        assert_eq!(
            cyclic.validate(&net, &want),
            Err(TopologyValidationError::Cycle)
        );
        let split = McTopology::from_edges(
            [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            want.clone(),
        );
        assert_eq!(
            split.validate(&net, &want),
            Err(TopologyValidationError::Disconnected)
        );
    }

    #[test]
    fn total_cost_sums_up_links() {
        let net = dgmc_topology::NetworkBuilder::new(3)
            .link(0, 1, 5)
            .link(1, 2, 7)
            .build();
        let t = McTopology::from_edges(
            [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
            terminals(&[0, 2]),
        );
        assert_eq!(t.total_cost(&net), Some(12));
        let stale = McTopology::from_edges([(NodeId(0), NodeId(2))], terminals(&[0, 2]));
        assert_eq!(stale.total_cost(&net), None);
    }

    #[test]
    fn hops_from_walks_the_tree() {
        let t = McTopology::from_edges(
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(1), NodeId(3)),
            ],
            terminals(&[0, 2, 3]),
        );
        let d = t.hops_from(NodeId(0));
        assert_eq!(d[&NodeId(0)], 0);
        assert_eq!(d[&NodeId(1)], 1);
        assert_eq!(d[&NodeId(2)], 2);
        assert_eq!(d[&NodeId(3)], 2);
        assert!(t.hops_from(NodeId(9)).is_empty());
    }

    #[test]
    fn pruning_removes_dangling_branches() {
        // 0-1-2 with a dangling 1-3-4 branch; terminals {0, 2}.
        let mut t = McTopology::from_edges(
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ],
            terminals(&[0, 2]),
        );
        t.prune_non_terminal_leaves();
        assert_eq!(t.edge_count(), 2);
        assert!(!t.touches(NodeId(3)));
        assert!(!t.touches(NodeId(4)));
        assert!(t.is_tree());
    }

    #[test]
    fn display_and_nodes() {
        let t = McTopology::from_edges([(NodeId(0), NodeId(1))], terminals(&[0, 1, 5]));
        assert_eq!(t.to_string(), "mc-topology(3 terminals, 1 edges)");
        assert_eq!(t.nodes(), terminals(&[0, 1, 5]));
        assert!(t.touches(NodeId(5)), "isolated terminal still touched");
        assert_eq!(t.degree_in(NodeId(0)), 1);
    }
}
