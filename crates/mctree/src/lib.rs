//! Multipoint-connection topology algorithms.
//!
//! An MC topology is "a subgraph such that any member of the set can reach
//! all other members". The D-GMC protocol is deliberately independent of the
//! algorithm used to compute it ("algorithms for both Steiner trees and
//! source-rooted trees can be accommodated"); this crate supplies the
//! algorithms the paper references:
//!
//! * [`algorithms::takahashi_matsuyama`] — the shortest-path Steiner
//!   heuristic (grow the tree toward the nearest terminal),
//! * [`algorithms::kmb`] — the Kou–Markowsky–Berman 2-approximation,
//! * [`algorithms::pruned_spt`] — source-rooted shortest-path trees pruned
//!   to the member set (the MOSPF/asymmetric topology),
//! * [`algorithms::greedy_join`] / [`algorithms::greedy_leave`] — the
//!   Imase–Waxman style incremental updates the paper recommends for
//!   membership changes ("whenever possible, an implementation should invoke
//!   an incremental update algorithm"),
//! * [`McAlgorithm`] — the pluggable strategy object the D-GMC switch uses,
//!   with [`SphStrategy`] (incremental shortest-path heuristic) and
//!   [`KmbStrategy`] (from-scratch KMB) implementations.
//!
//! All algorithms are **deterministic** functions of the network image and
//! the terminal set — concurrent switches proposing from identical images
//! produce identical topologies, which D-GMC's convergence relies on
//! (DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use dgmc_mctree::{algorithms, McTopology};
//! use dgmc_topology::{generate, NodeId};
//! use std::collections::BTreeSet;
//!
//! let net = generate::grid(3, 3);
//! let terminals: BTreeSet<NodeId> = [NodeId(0), NodeId(2), NodeId(8)].into();
//! let tree = algorithms::takahashi_matsuyama(&net, &terminals);
//! assert!(tree.validate(&net, &terminals).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod metrics;
pub mod qos;
pub mod repair;

mod mc_type;
mod strategy;
mod topology_type;

pub use mc_type::{McType, Role};
pub use strategy::{DelayBoundedStrategy, KmbStrategy, McAlgorithm, SphStrategy};
pub use topology_type::{McTopology, TopologyValidationError};
