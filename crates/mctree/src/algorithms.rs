//! Deterministic MC topology computation algorithms.
//!
//! Terminology: the *terminals* of a computation are the switches the tree
//! must span — the members of a symmetric MC, the receivers of a
//! receiver-only MC, or senders ∪ receivers of an asymmetric MC.
//!
//! Unreachable terminals (the image is partitioned) are left as isolated
//! terminals of the result; the paper explicitly leaves partition survival
//! for further study, and [`crate::McTopology::validate`] flags such
//! topologies as disconnected.

//! Every heuristic comes in two forms: the historical signature computing
//! from scratch, and a `*_with` variant taking an
//! [`SpfCache`](dgmc_topology::SpfCache) that memoizes the underlying
//! Dijkstra runs across terminals, MCs and engines. Both produce identical
//! results; the plain form simply runs over a throwaway disabled cache.

use crate::McTopology;
use dgmc_topology::{spf, unionfind::UnionFind, Network, NodeId, SpfCache};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// The shortest-path (Takahashi–Matsuyama) Steiner heuristic.
///
/// Starts from the smallest terminal id and repeatedly connects the terminal
/// nearest to the tree via its shortest path. Deterministic: distance ties
/// break toward the smaller terminal id, path ties follow
/// [`spf::shortest_path_forest`].
///
/// # Examples
///
/// ```
/// use dgmc_mctree::algorithms::takahashi_matsuyama;
/// use dgmc_topology::{generate, NodeId};
/// use std::collections::BTreeSet;
///
/// let net = generate::ring(6);
/// let terminals: BTreeSet<NodeId> = [NodeId(0), NodeId(3)].into();
/// let tree = takahashi_matsuyama(&net, &terminals);
/// assert_eq!(tree.edge_count(), 3);
/// ```
pub fn takahashi_matsuyama(net: &Network, terminals: &BTreeSet<NodeId>) -> McTopology {
    takahashi_matsuyama_with(net, terminals, &SpfCache::disabled())
}

/// [`takahashi_matsuyama`] with memoized shortest-path forests.
pub fn takahashi_matsuyama_with(
    net: &Network,
    terminals: &BTreeSet<NodeId>,
    cache: &SpfCache,
) -> McTopology {
    let mut result = McTopology::new(terminals.clone());
    let Some(&start) = terminals.iter().next() else {
        return result;
    };
    let mut in_tree: BTreeSet<NodeId> = BTreeSet::new();
    in_tree.insert(start);
    let mut remaining: BTreeSet<NodeId> = terminals.iter().copied().skip(1).collect();
    while !remaining.is_empty() {
        let sources: Vec<NodeId> = in_tree.iter().copied().collect();
        let forest = cache.forest(net, &sources);
        // Nearest remaining terminal; ties to the smaller id (BTreeSet order).
        let next = remaining
            .iter()
            .copied()
            .filter_map(|t| forest.cost_to(t).map(|c| (c, t)))
            .min();
        let Some((_, t)) = next else {
            // Everything left is unreachable: keep them isolated.
            break;
        };
        let path = forest.path_to(t).expect("cost implies a path");
        for w in path.windows(2) {
            result.insert_edge(w[0], w[1]);
            in_tree.insert(w[0]);
            in_tree.insert(w[1]);
        }
        in_tree.insert(t);
        remaining.remove(&t);
    }
    result
}

/// The Kou–Markowsky–Berman Steiner heuristic (2-approximation).
///
/// 1. Build the complete distance graph over the terminals,
/// 2. take its minimum spanning tree,
/// 3. expand each MST edge into the underlying shortest path,
/// 4. take an MST of the expanded subgraph,
/// 5. prune non-terminal leaves.
///
/// Fully deterministic; ties break by node/edge ids.
pub fn kmb(net: &Network, terminals: &BTreeSet<NodeId>) -> McTopology {
    kmb_with(net, terminals, &SpfCache::disabled())
}

/// [`kmb`] with memoized per-terminal shortest-path trees — the heuristic's
/// dominant cost (one full Dijkstra per terminal per invocation).
pub fn kmb_with(net: &Network, terminals: &BTreeSet<NodeId>, cache: &SpfCache) -> McTopology {
    let mut result = McTopology::new(terminals.clone());
    if terminals.len() < 2 {
        return result;
    }
    let terms: Vec<NodeId> = terminals.iter().copied().collect();
    let trees: BTreeMap<NodeId, Rc<spf::SpfTree>> =
        terms.iter().map(|&t| (t, cache.tree(net, t))).collect();

    // Step 2: Kruskal on the terminal distance graph.
    let mut pairs: Vec<(u64, NodeId, NodeId)> = Vec::new();
    for (i, &a) in terms.iter().enumerate() {
        for &b in &terms[i + 1..] {
            if let Some(c) = trees[&a].cost_to(b) {
                pairs.push((c, a, b));
            }
        }
    }
    pairs.sort();
    let index_of: BTreeMap<NodeId, usize> =
        terms.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut uf = UnionFind::new(terms.len());
    let mut mst_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for (_, a, b) in pairs {
        if uf.union(index_of[&a], index_of[&b]) {
            mst_pairs.push((a, b));
        }
    }

    // Step 3: expand MST edges into real paths; collect the subgraph.
    let mut sub_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (a, b) in mst_pairs {
        let path = trees[&a].path_to(b).expect("pair was reachable");
        for w in path.windows(2) {
            let e = if w[0] < w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            sub_edges.insert(e);
        }
    }

    // Step 4: MST of the subgraph (Kruskal over its edges by cost then ids).
    let mut weighted: Vec<(u64, NodeId, NodeId)> = sub_edges
        .iter()
        .map(|&(a, b)| {
            let cost = net
                .link_between(a, b)
                .filter(|l| l.is_up())
                .map(|l| l.cost)
                .expect("subgraph edges come from live shortest paths");
            (cost, a, b)
        })
        .collect();
    weighted.sort();
    let mut node_index: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &(_, a, b) in &weighted {
        let next = node_index.len();
        node_index.entry(a).or_insert(next);
        let next = node_index.len();
        node_index.entry(b).or_insert(next);
    }
    let mut uf2 = UnionFind::new(node_index.len());
    for (_, a, b) in weighted {
        if uf2.union(node_index[&a], node_index[&b]) {
            result.insert_edge(a, b);
        }
    }

    // Step 5: prune.
    result.prune_non_terminal_leaves();
    result
}

/// Source-rooted shortest-path tree pruned to the terminals (MOSPF-style).
///
/// The result spans `root` and every reachable terminal; its terminal set is
/// `terminals ∪ {root}`.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn pruned_spt(net: &Network, root: NodeId, terminals: &BTreeSet<NodeId>) -> McTopology {
    pruned_spt_with(net, root, terminals, &SpfCache::disabled())
}

/// [`pruned_spt`] with a memoized root tree.
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn pruned_spt_with(
    net: &Network,
    root: NodeId,
    terminals: &BTreeSet<NodeId>,
    cache: &SpfCache,
) -> McTopology {
    let tree = cache.tree(net, root);
    let mut all_terminals = terminals.clone();
    all_terminals.insert(root);
    let mut result = McTopology::new(all_terminals);
    for &t in terminals {
        if let Some(path) = tree.path_to(t) {
            for w in path.windows(2) {
                result.insert_edge(w[0], w[1]);
            }
        }
    }
    result
}

/// Builds a *delay-bounded* tree: every terminal's in-tree path cost from
/// `root` stays within `bound`, while link cost is greedily minimized
/// (a KPP-style shallow-light heuristic).
///
/// Terminals are attached in order of their unicast distance from the root:
/// each first tries the cheapest attachment to the current tree; if that
/// attachment would blow the delay bound, it falls back to its direct
/// shortest path from the root (which has minimal possible delay).
///
/// # Errors
///
/// Returns the first terminal whose *shortest possible* delay from `root`
/// already exceeds `bound` (the request is infeasible).
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn delay_bounded(
    net: &Network,
    root: NodeId,
    terminals: &BTreeSet<NodeId>,
    bound: u64,
) -> Result<McTopology, NodeId> {
    delay_bounded_with(net, root, terminals, bound, &SpfCache::disabled())
}

/// [`delay_bounded`] with memoized trees and forests.
///
/// # Errors
///
/// Returns the first terminal whose *shortest possible* delay from `root`
/// already exceeds `bound` (the request is infeasible).
///
/// # Panics
///
/// Panics if `root` is not a node of `net`.
pub fn delay_bounded_with(
    net: &Network,
    root: NodeId,
    terminals: &BTreeSet<NodeId>,
    bound: u64,
    cache: &SpfCache,
) -> Result<McTopology, NodeId> {
    let root_spt = cache.tree(net, root);
    // Feasibility check up front.
    let mut order: Vec<(u64, NodeId)> = Vec::new();
    for &t in terminals {
        match root_spt.cost_to(t) {
            Some(d) if d <= bound => order.push((d, t)),
            _ => return Err(t),
        }
    }
    order.sort();

    let mut all_terminals = terminals.clone();
    all_terminals.insert(root);
    let mut result = McTopology::new(all_terminals);
    // delay[v] = in-tree path cost from root for tree nodes.
    let mut delay: BTreeMap<NodeId, u64> = BTreeMap::new();
    delay.insert(root, 0);

    for (_, t) in order {
        if delay.contains_key(&t) {
            continue;
        }
        // Cheapest attachment to the current tree.
        let sources: Vec<NodeId> = delay.keys().copied().collect();
        let forest = cache.forest(net, &sources);
        let attach_ok = forest.path_to(t).and_then(|path| {
            let attach = path[0];
            let extra = forest.cost_to(t)?;
            let total = delay.get(&attach)? + extra;
            (total <= bound).then_some((path, attach))
        });
        let path = match attach_ok {
            Some((path, attach)) => {
                let base = delay[&attach];
                // Record delays along the new branch.
                let mut acc = base;
                for w in path.windows(2) {
                    let cost = net
                        .link_between(w[0], w[1])
                        .expect("forest paths use live links")
                        .cost;
                    acc += cost;
                    delay.entry(w[1]).or_insert(acc);
                }
                path
            }
            None => {
                // Fall back to the minimal-delay direct path.
                let path = root_spt.path_to(t).expect("feasibility checked");
                let mut acc = 0;
                for w in path.windows(2) {
                    let cost = net
                        .link_between(w[0], w[1])
                        .expect("spt paths use live links")
                        .cost;
                    acc += cost;
                    // Direct paths may rewire nodes closer to the root;
                    // keep the smaller delay.
                    delay
                        .entry(w[1])
                        .and_modify(|d| *d = (*d).min(acc))
                        .or_insert(acc);
                }
                path
            }
        };
        for w in path.windows(2) {
            result.insert_edge(w[0], w[1]);
        }
    }
    // The union of attach paths and fallback paths may contain cycles;
    // extract the delay-respecting tree by BFS from the root over result
    // edges, preferring lower-delay parents.
    Ok(extract_tree(net, &result, root, terminals))
}

/// Deterministic shortest-path (by cost) tree extraction from a subgraph,
/// rooted at `root`, pruned to the terminals.
fn extract_tree(
    net: &Network,
    subgraph: &McTopology,
    root: NodeId,
    terminals: &BTreeSet<NodeId>,
) -> McTopology {
    // Build a temporary network restricted to the subgraph's edges.
    let mut restricted = Network::with_nodes(net.len());
    for (a, b) in subgraph.edges() {
        if let Some(l) = net.link_between(a, b) {
            restricted
                .add_link(a, b, l.cost)
                .expect("subgraph edges unique");
        }
    }
    let spt = spf::shortest_path_tree(&restricted, root);
    let mut all_terminals = terminals.clone();
    all_terminals.insert(root);
    let mut tree = McTopology::new(all_terminals);
    for &t in terminals {
        if let Some(path) = spt.path_to(t) {
            for w in path.windows(2) {
                tree.insert_edge(w[0], w[1]);
            }
        }
    }
    tree
}

/// Incrementally connects `joining` to an existing tree by its shortest path
/// to the nearest tree node (Imase–Waxman style greedy join).
///
/// The terminal set of the result gains `joining`. If the tree is empty the
/// result is the singleton tree at `joining`; if the image offers no path
/// the terminal stays isolated.
pub fn greedy_join(net: &Network, tree: &McTopology, joining: NodeId) -> McTopology {
    greedy_join_with(net, tree, joining, &SpfCache::disabled())
}

/// [`greedy_join`] with a memoized forest from the tree's nodes.
pub fn greedy_join_with(
    net: &Network,
    tree: &McTopology,
    joining: NodeId,
    cache: &SpfCache,
) -> McTopology {
    let mut result = tree.clone();
    let mut terminals = tree.terminals().clone();
    terminals.insert(joining);
    result.set_terminals(terminals);
    if tree.touches(joining) || tree.nodes().is_empty() {
        return result;
    }
    let sources: Vec<NodeId> = tree.nodes().into_iter().collect();
    let forest = cache.forest(net, &sources);
    if let Some(path) = forest.path_to(joining) {
        for w in path.windows(2) {
            result.insert_edge(w[0], w[1]);
        }
    }
    result
}

/// Incrementally disconnects `leaving`: drops it from the terminals and
/// prunes the now-dangling branch (greedy leave).
///
/// An interior leaving member keeps relaying: only leaf chains are removed,
/// exactly as the paper's "removes a branch from a leaving member".
pub fn greedy_leave(tree: &McTopology, leaving: NodeId) -> McTopology {
    let mut result = tree.clone();
    let mut terminals = tree.terminals().clone();
    terminals.remove(&leaving);
    result.set_terminals(terminals);
    result.prune_non_terminal_leaves();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::{generate, LinkId, LinkState, NetworkBuilder};

    fn terminals(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn tm_trivial_cases() {
        let net = generate::ring(5);
        assert!(takahashi_matsuyama(&net, &terminals(&[])).is_empty());
        let single = takahashi_matsuyama(&net, &terminals(&[2]));
        assert_eq!(single.edge_count(), 0);
        assert!(single.is_tree());
    }

    #[test]
    fn tm_spans_terminals_on_grid() {
        let net = generate::grid(4, 4);
        let want = terminals(&[0, 3, 12, 15]);
        let tree = takahashi_matsuyama(&net, &want);
        assert_eq!(tree.validate(&net, &want), Ok(()));
    }

    #[test]
    fn tm_on_ring_picks_short_side() {
        let net = generate::ring(8);
        let tree = takahashi_matsuyama(&net, &terminals(&[0, 2]));
        assert_eq!(tree.edge_count(), 2, "two hops around the short side");
        assert!(tree.contains_edge(NodeId(0), NodeId(1)));
        assert!(tree.contains_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn tm_beats_naive_star_on_path() {
        // Path 0-1-2-3-4: terminals {0,2,4}; tree must be the path itself.
        let net = generate::path(5);
        let want = terminals(&[0, 2, 4]);
        let tree = takahashi_matsuyama(&net, &want);
        assert_eq!(tree.edge_count(), 4);
        assert_eq!(tree.total_cost(&net), Some(4));
    }

    #[test]
    fn kmb_matches_optimum_on_small_cases() {
        // Classic KMB win: star center is cheaper than pairwise paths.
        //      1
        //      |
        //  0 - 4 - 2     plus expensive direct links 0-1, 1-2, 0-2
        let net = NetworkBuilder::new(5)
            .link(0, 4, 1)
            .link(1, 4, 1)
            .link(2, 4, 1)
            .link(0, 1, 3)
            .link(1, 2, 3)
            .link(0, 2, 3)
            .build();
        let want = terminals(&[0, 1, 2]);
        let tree = kmb(&net, &want);
        assert_eq!(tree.validate(&net, &want), Ok(()));
        assert_eq!(tree.total_cost(&net), Some(3), "uses the Steiner point 4");
    }

    #[test]
    fn kmb_and_tm_span_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = generate::waxman(&mut rng, 40, &generate::WaxmanParams::default());
            let want = generate::sample_nodes(&mut rng, &net, 8)
                .into_iter()
                .collect();
            let t1 = takahashi_matsuyama(&net, &want);
            let t2 = kmb(&net, &want);
            assert_eq!(t1.validate(&net, &want), Ok(()));
            assert_eq!(t2.validate(&net, &want), Ok(()));
        }
    }

    #[test]
    fn pruned_spt_follows_shortest_paths() {
        let net = generate::grid(3, 3);
        let tree = pruned_spt(&net, NodeId(0), &terminals(&[8]));
        // Shortest 0->8 path in a unit grid is 4 hops.
        assert_eq!(tree.edge_count(), 4);
        assert!(tree.terminals().contains(&NodeId(0)), "root is a terminal");
        let empty = pruned_spt(&net, NodeId(4), &terminals(&[]));
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn greedy_join_extends_by_shortest_path() {
        let net = generate::path(5);
        let base = takahashi_matsuyama(&net, &terminals(&[0, 1]));
        let grown = greedy_join(&net, &base, NodeId(4));
        assert_eq!(grown.edge_count(), 4);
        assert!(grown.terminals().contains(&NodeId(4)));
        assert_eq!(grown.validate(&net, &terminals(&[0, 1, 4])), Ok(()));
    }

    #[test]
    fn greedy_join_on_empty_tree_is_singleton() {
        let net = generate::ring(4);
        let grown = greedy_join(&net, &McTopology::empty(), NodeId(2));
        assert_eq!(grown.edge_count(), 0);
        assert_eq!(grown.terminals(), &terminals(&[2]));
    }

    #[test]
    fn greedy_join_of_interior_node_adds_nothing() {
        let net = generate::path(5);
        let base = takahashi_matsuyama(&net, &terminals(&[0, 4]));
        let grown = greedy_join(&net, &base, NodeId(2));
        assert_eq!(grown.edge_count(), base.edge_count());
        assert!(grown.terminals().contains(&NodeId(2)));
    }

    #[test]
    fn greedy_leave_prunes_leaf_chain() {
        let net = generate::path(5);
        let base = takahashi_matsuyama(&net, &terminals(&[0, 2, 4]));
        let shrunk = greedy_leave(&base, NodeId(4));
        assert_eq!(shrunk.edge_count(), 2, "3-4 branch pruned back to 2");
        assert_eq!(shrunk.validate(&net, &terminals(&[0, 2])), Ok(()));
    }

    #[test]
    fn greedy_leave_keeps_interior_relays() {
        let net = generate::path(5);
        let base = takahashi_matsuyama(&net, &terminals(&[0, 2, 4]));
        let shrunk = greedy_leave(&base, NodeId(2));
        assert_eq!(
            shrunk.edge_count(),
            4,
            "interior ex-member keeps forwarding"
        );
        assert_eq!(shrunk.validate(&net, &terminals(&[0, 4])), Ok(()));
    }

    #[test]
    fn delay_bounded_meets_its_bound() {
        // Ring of 8 with unit costs: terminals opposite the root.
        let net = generate::ring(8);
        let root = NodeId(0);
        let want = terminals(&[3, 4, 5]);
        for bound in [4u64, 5, 7] {
            let tree = delay_bounded(&net, root, &want, bound).unwrap();
            let mut full = want.clone();
            full.insert(root);
            assert_eq!(tree.validate(&net, &full), Ok(()), "bound {bound}");
            let delays = crate::metrics::tree_path_costs(&tree, &net, root).unwrap();
            for &t in &want {
                assert!(delays[&t] <= bound, "bound {bound}: {t} at {}", delays[&t]);
            }
        }
    }

    #[test]
    fn delay_bounded_detects_infeasible_bounds() {
        let net = generate::path(5);
        let want = terminals(&[4]);
        assert_eq!(delay_bounded(&net, NodeId(0), &want, 3), Err(NodeId(4)));
        assert!(delay_bounded(&net, NodeId(0), &want, 4).is_ok());
    }

    #[test]
    fn tight_bound_approaches_spt_loose_bound_saves_cost() {
        // Chain 0-1-2-3 (unit costs) with terminal 3; terminal 4 hangs off
        // 3 (cost 1) but also has a direct cost-3 link to the root. With a
        // loose bound, 4 attaches to the chain (cheap, delay 4); with a
        // tight bound of 3 it must take the direct link (delay 3, pricier).
        let net = NetworkBuilder::new(5)
            .link(0, 1, 1)
            .link(1, 2, 1)
            .link(2, 3, 1)
            .link(3, 4, 1)
            .link(0, 4, 3)
            .build();
        let want = terminals(&[3, 4]);
        let loose = delay_bounded(&net, NodeId(0), &want, 10).unwrap();
        assert_eq!(loose.total_cost(&net), Some(4), "shared chain when allowed");
        let loose_delays = crate::metrics::tree_path_costs(&loose, &net, NodeId(0)).unwrap();
        assert_eq!(loose_delays[&NodeId(4)], 4);
        let tight = delay_bounded(&net, NodeId(0), &want, 3).unwrap();
        let tight_delays = crate::metrics::tree_path_costs(&tight, &net, NodeId(0)).unwrap();
        assert!(tight_delays[&NodeId(4)] <= 3, "bound honored");
        assert_eq!(tight.total_cost(&net), Some(6), "direct link when tight");
    }

    #[test]
    fn delay_bounded_is_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let net = generate::waxman(&mut rng, 40, &generate::WaxmanParams::default());
        let want: BTreeSet<NodeId> = generate::sample_nodes(&mut rng, &net, 6)
            .into_iter()
            .collect();
        let bound = dgmc_topology::metrics::cost_diameter(&net);
        let a = delay_bounded(&net, NodeId(0), &want, bound).unwrap();
        let b = delay_bounded(&net, NodeId(0), &want, bound).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_image_leaves_isolated_terminals() {
        let mut net = generate::path(4);
        net.set_link_state(LinkId(1), LinkState::Down).unwrap(); // 1-2 cut
        let want = terminals(&[0, 3]);
        let tree = takahashi_matsuyama(&net, &want);
        assert_eq!(tree.edge_count(), 0);
        assert!(tree.validate(&net, &want).is_err());
    }

    #[test]
    fn algorithms_are_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let net = generate::waxman(&mut rng, 50, &generate::WaxmanParams::default());
        let want: BTreeSet<NodeId> = generate::sample_nodes(&mut rng, &net, 10)
            .into_iter()
            .collect();
        assert_eq!(
            takahashi_matsuyama(&net, &want),
            takahashi_matsuyama(&net, &want)
        );
        assert_eq!(kmb(&net, &want), kmb(&net, &want));
        assert_eq!(
            pruned_spt(&net, NodeId(0), &want),
            pruned_spt(&net, NodeId(0), &want)
        );
    }
}
