//! Property-based tests of the MC topology algorithms.

use dgmc_mctree::{algorithms, metrics, KmbStrategy, McAlgorithm, SphStrategy};
use dgmc_topology::{generate, spf, Network, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn arb_case() -> impl Strategy<Value = (Network, BTreeSet<NodeId>)> {
    (8usize..50, 2usize..8, any::<u64>()).prop_map(|(n, k, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
        let terminals = generate::sample_nodes(&mut rng, &net, k.min(n))
            .into_iter()
            .collect();
        (net, terminals)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both Steiner heuristics produce valid trees spanning the terminals.
    #[test]
    fn heuristics_produce_valid_trees((net, terminals) in arb_case()) {
        for tree in [
            algorithms::takahashi_matsuyama(&net, &terminals),
            algorithms::kmb(&net, &terminals),
        ] {
            prop_assert_eq!(tree.validate(&net, &terminals), Ok(()));
            prop_assert!(tree.is_tree());
        }
    }

    /// Tree cost is bounded below by the max terminal-pair shortest path
    /// and above by the union of shortest paths from the first terminal
    /// (the trivial star construction TM must not exceed).
    #[test]
    fn steiner_cost_bounds((net, terminals) in arb_case()) {
        let tree = algorithms::takahashi_matsuyama(&net, &terminals);
        let cost = tree.total_cost(&net).expect("valid tree");
        let first = *terminals.iter().next().unwrap();
        let spt = spf::shortest_path_tree(&net, first);
        let mut lower = 0;
        let mut star_upper = 0;
        for &t in &terminals {
            let d = spt.cost_to(t).expect("connected");
            lower = lower.max(d);
            star_upper += d;
        }
        prop_assert!(cost >= lower, "cost {cost} below diameter bound {lower}");
        prop_assert!(
            cost <= star_upper.max(lower),
            "cost {cost} exceeds star bound {star_upper}"
        );
    }

    /// KMB satisfies its 2-approximation guarantee relative to the
    /// terminal-distance MST lower bound: cost(KMB) <= 2 * OPT and
    /// MST(distance graph)/2 <= OPT, so cost(KMB) <= MST(distances).
    #[test]
    fn kmb_within_distance_mst((net, terminals) in arb_case()) {
        let tree = algorithms::kmb(&net, &terminals);
        let cost = tree.total_cost(&net).expect("valid tree");
        // Kruskal MST over the terminal distance graph.
        let terms: Vec<NodeId> = terminals.iter().copied().collect();
        let mut pairs = Vec::new();
        for (i, &a) in terms.iter().enumerate() {
            let spt = spf::shortest_path_tree(&net, a);
            for &b in &terms[i + 1..] {
                pairs.push((spt.cost_to(b).unwrap(), a, b));
            }
        }
        pairs.sort();
        let mut uf = dgmc_topology::unionfind::UnionFind::new(terms.len());
        let index = |x: NodeId| terms.iter().position(|&t| t == x).unwrap();
        let mut mst = 0u64;
        for (w, a, b) in pairs {
            if uf.union(index(a), index(b)) {
                mst += w;
            }
        }
        prop_assert!(cost <= mst, "KMB {cost} exceeds distance-MST {mst}");
    }

    /// Incremental join preserves validity and never touches existing
    /// terminal connectivity; leave preserves validity for the rest.
    #[test]
    fn incremental_updates_preserve_validity((net, terminals) in arb_case()) {
        let tree = algorithms::takahashi_matsuyama(&net, &terminals);
        // Join a node not yet in the terminal set.
        if let Some(newcomer) = net.nodes().find(|n| !terminals.contains(n)) {
            let grown = algorithms::greedy_join(&net, &tree, newcomer);
            let mut want = terminals.clone();
            want.insert(newcomer);
            prop_assert_eq!(grown.validate(&net, &want), Ok(()));
            // Old edges are kept: joins are strictly additive.
            for e in tree.edges() {
                prop_assert!(grown.contains_edge(e.0, e.1));
            }
        }
        // Leave the largest terminal.
        let leaver = *terminals.iter().next_back().unwrap();
        let shrunk = algorithms::greedy_leave(&tree, leaver);
        let mut rest = terminals.clone();
        rest.remove(&leaver);
        if !rest.is_empty() {
            prop_assert_eq!(shrunk.validate(&net, &rest), Ok(()));
        }
    }

    /// Strategies are deterministic across repeated invocations (the
    /// consensus prerequisite).
    #[test]
    fn strategies_are_deterministic((net, terminals) in arb_case()) {
        let sph = SphStrategy::new();
        let kmb = KmbStrategy::new();
        let base = sph.compute(&net, &terminals, None);
        prop_assert_eq!(&base, &sph.compute(&net, &terminals, None));
        prop_assert_eq!(
            kmb.compute(&net, &terminals, None),
            kmb.compute(&net, &terminals, None)
        );
        let from_prev = sph.compute(&net, &terminals, Some(&base));
        prop_assert_eq!(&from_prev, &sph.compute(&net, &terminals, Some(&base)));
    }

    /// Pruned SPT paths match unicast shortest paths exactly.
    #[test]
    fn pruned_spt_is_shortest_per_terminal((net, terminals) in arb_case()) {
        let root = *terminals.iter().next().unwrap();
        let others: BTreeSet<NodeId> = terminals.iter().copied().skip(1).collect();
        let tree = algorithms::pruned_spt(&net, root, &others);
        let spt = spf::shortest_path_tree(&net, root);
        let in_tree = metrics::tree_path_costs(&tree, &net, root).expect("valid");
        for &t in &others {
            prop_assert_eq!(in_tree[&t], spt.cost_to(t).unwrap());
        }
    }

    /// Link loads are conserved: the sum over edges equals the sum of
    /// pairwise tree path lengths (each direction counted).
    #[test]
    fn link_loads_conserve_path_hops((net, terminals) in arb_case()) {
        let tree = algorithms::takahashi_matsuyama(&net, &terminals);
        let loads = metrics::link_loads(&tree);
        let total: u64 = loads.values().sum();
        // Sum over unordered pairs of 2 * hops(path).
        let terms: Vec<NodeId> = terminals.iter().copied().collect();
        let mut expect = 0u64;
        for (i, &a) in terms.iter().enumerate() {
            let hops = tree.hops_from(a);
            for &b in &terms[i + 1..] {
                expect += 2 * u64::from(hops[&b]);
            }
        }
        prop_assert_eq!(total, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strategies produce identical topologies through a shared warm cache
    /// and through from-scratch computation — the equivalence the protocol's
    /// consensus relies on once engines share an `SpfCache`.
    #[test]
    fn cached_strategies_match_from_scratch((net, terminals) in arb_case()) {
        use dgmc_mctree::DelayBoundedStrategy;
        use dgmc_topology::SpfCache;
        let cache = SpfCache::new();
        let strategies: [&dyn McAlgorithm; 3] = [
            &SphStrategy::new(),
            &KmbStrategy::new(),
            &DelayBoundedStrategy::new(dgmc_topology::metrics::cost_diameter(&net)),
        ];
        for strategy in strategies {
            let scratch = strategy.compute(&net, &terminals, None);
            // Twice through the same cache: the second pass runs warm.
            let cold = strategy.compute_with(&net, &terminals, None, &cache);
            let warm = strategy.compute_with(&net, &terminals, None, &cache);
            prop_assert_eq!(&scratch, &cold, "{} cold", strategy.name());
            prop_assert_eq!(&scratch, &warm, "{} warm", strategy.name());
            // Incremental path: previous tree plus one member delta.
            let mut more = terminals.clone();
            more.insert(NodeId((terminals.len() % net.len()) as u32));
            let inc_scratch = strategy.compute(&net, &more, Some(&scratch));
            let inc_cached = strategy.compute_with(&net, &more, Some(&scratch), &cache);
            prop_assert_eq!(&inc_scratch, &inc_cached, "{} incremental", strategy.name());
        }
        prop_assert!(cache.stats().hits > 0, "warm passes must hit the cache");
    }
}

fn arb_membership_script() -> impl Strategy<Value = (Network, BTreeSet<NodeId>, Vec<(u64, bool)>)> {
    (
        8usize..50,
        0usize..5,
        any::<u64>(),
        prop::collection::vec((any::<u64>(), any::<bool>()), 1..24),
    )
        .prop_map(|(n, k, seed, ops)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = generate::waxman(&mut rng, n, &generate::WaxmanParams::default());
            let members = generate::sample_nodes(&mut rng, &net, k.min(n))
                .into_iter()
                .collect();
            (net, members, ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental membership repair equivalence: a pruned SPT maintained
    /// purely by [`repair::graft_member`] / [`repair::prune_member`] across a
    /// random join/leave script stays **byte-identical** to a from-scratch
    /// [`algorithms::pruned_spt`] over the evolving member set — including
    /// redundant joins, leaves of non-members and `leave(root)` no-ops.
    #[test]
    fn membership_repair_equals_full_recompute(
        (net, mut members, ops) in arb_membership_script()
    ) {
        use dgmc_mctree::repair;
        use dgmc_topology::SpfCache;
        let root = NodeId(0);
        members.remove(&root);
        let mut tree = algorithms::pruned_spt(&net, root, &members);
        let cache = SpfCache::new();
        for (pick, join) in ops {
            let node = NodeId((pick % net.len() as u64) as u32);
            if join {
                tree = repair::graft_member(&net, root, &tree, node, &cache);
                members.insert(node);
            } else {
                tree = repair::prune_member(root, &tree, node);
                if node != root {
                    members.remove(&node);
                }
            }
            prop_assert_eq!(
                &tree,
                &algorithms::pruned_spt(&net, root, &members),
                "after {} of {}", if join { "join" } else { "leave" }, node
            );
        }
    }
}
