//! Tracing integration: the simulation records deliveries with labels.

use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, Simulation};

struct Chain {
    next: Option<ActorId>,
}

impl Actor<&'static str> for Chain {
    fn handle(&mut self, ctx: &mut Ctx<'_, &'static str>, _env: Envelope<&'static str>) {
        if let Some(next) = self.next {
            ctx.send(next, SimDuration::micros(5), "relay");
        }
    }
}

#[test]
fn trace_records_deliveries_in_order() {
    let mut sim = Simulation::new();
    let c = sim.add_actor(Box::new(Chain { next: None }));
    let b = sim.add_actor(Box::new(Chain { next: Some(c) }));
    let a = sim.add_actor(Box::new(Chain { next: Some(b) }));
    sim.enable_trace(16, |msg: &&'static str| (*msg).to_owned());
    sim.inject(a, SimDuration::ZERO, "start");
    sim.run_to_quiescence();

    let trace = sim.trace().expect("tracing enabled");
    assert_eq!(trace.len(), 3);
    let labels: Vec<&str> = trace.iter().map(|e| e.label.as_str()).collect();
    assert_eq!(labels, vec!["start", "relay", "relay"]);
    // Timestamps are non-decreasing and senders are recorded.
    let events: Vec<_> = trace.iter().collect();
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    assert_eq!(events[0].from, None, "injection has no sender");
    assert_eq!(events[1].from, Some(a));
    assert_eq!(trace.matching("relay").count(), 2);
}

#[test]
fn trace_ring_keeps_the_tail() {
    let mut sim = Simulation::new();
    let b = sim.add_actor(Box::new(Chain { next: None }));
    let a = sim.add_actor(Box::new(Chain { next: Some(b) }));
    sim.enable_trace(1, |_| "m".to_owned());
    sim.inject(a, SimDuration::ZERO, "x");
    sim.run_to_quiescence();
    let trace = sim.trace().unwrap();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.dropped(), 1);
    assert_eq!(trace.iter().next().unwrap().to, b, "tail retained");
}

#[test]
fn disabled_trace_returns_none() {
    let mut sim: Simulation<&'static str> = Simulation::new();
    let a = sim.add_actor(Box::new(Chain { next: None }));
    sim.inject(a, SimDuration::ZERO, "x");
    sim.run_to_quiescence();
    assert!(sim.trace().is_none());
}
