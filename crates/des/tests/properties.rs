//! Property-based tests of the simulation kernel's ordering guarantees.

use dgmc_des::{Actor, Ctx, Envelope, SimDuration, SimTime, Simulation};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Records every delivery it sees into a shared log.
struct Logger {
    log: Rc<RefCell<Vec<(SimTime, u64)>>>,
}

impl Actor<u64> for Logger {
    fn handle(&mut self, ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
        self.log.borrow_mut().push((ctx.now(), env.msg));
        ctx.counter("seen").incr();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deliveries happen in nondecreasing time order regardless of
    /// injection order, and simultaneous events keep injection (FIFO) order.
    #[test]
    fn deliveries_are_time_ordered(delays in prop::collection::vec(0u64..1000, 1..50)) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Logger { log: Rc::clone(&log) }));
        for (k, &d) in delays.iter().enumerate() {
            sim.inject(a, SimDuration::micros(d), k as u64);
        }
        sim.run_to_quiescence();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        // Time order.
        prop_assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO among equal instants.
        for w in log.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "same-instant FIFO violated");
            }
        }
        prop_assert_eq!(sim.counter_value("seen"), delays.len() as u64);
        prop_assert_eq!(sim.events_processed(), delays.len() as u64);
    }

    /// run_until never delivers past the horizon and a follow-up run
    /// delivers exactly the remainder.
    #[test]
    fn horizon_splits_are_exact(
        delays in prop::collection::vec(1u64..1000, 1..40),
        horizon in 1u64..1000,
    ) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Logger { log: Rc::clone(&log) }));
        for (k, &d) in delays.iter().enumerate() {
            sim.inject(a, SimDuration::micros(d), k as u64);
        }
        let cut = SimTime::ZERO + SimDuration::micros(horizon);
        sim.run_until(cut);
        let before = log.borrow().len();
        let expect_before = delays.iter().filter(|&&d| d <= horizon).count();
        prop_assert_eq!(before, expect_before);
        prop_assert!(log.borrow().iter().all(|&(t, _)| t <= cut));
        sim.run_to_quiescence();
        prop_assert_eq!(log.borrow().len(), delays.len());
    }
}
