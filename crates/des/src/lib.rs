//! Deterministic discrete-event simulation kernel for the D-GMC reproduction.
//!
//! The paper's evaluation used CSIM, a proprietary process-oriented C
//! simulation package. This crate is the substitution (DESIGN.md §3): a
//! small, fully deterministic event-driven kernel with
//!
//! * simulated time ([`SimTime`], [`SimDuration`]) with nanosecond ticks,
//! * an event queue with deterministic FIFO tie-breaking ([`Simulation`]),
//! * message-passing actors ([`Actor`]) addressed by [`ActorId`],
//! * named counters and statistical tallies with 95% confidence intervals
//!   ([`stats`]), matching how the paper reports its figures,
//! * seeded fault injection on the delivery path ([`net`]: loss,
//!   duplication, jitter, link flaps, node outages) and a seed-sweeping
//!   schedule-exploration harness with replayable repro bundles
//!   ([`explorer`]),
//! * a dependency-free scoped-thread worker pool that shards independent
//!   seeds across cores with deterministic, seed-ordered aggregation
//!   ([`par`]).
//!
//! # Examples
//!
//! ```
//! use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, Simulation};
//!
//! struct Echo;
//! impl Actor<u32> for Echo {
//!     fn handle(&mut self, ctx: &mut Ctx<'_, u32>, env: Envelope<u32>) {
//!         ctx.counter("echoes").incr();
//!         if env.msg < 3 {
//!             ctx.send(env.to, SimDuration::micros(5), env.msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let a = sim.add_actor(Box::new(Echo));
//! sim.inject(a, SimDuration::ZERO, 0u32);
//! sim.run_to_quiescence();
//! assert_eq!(sim.counter_value("echoes"), 4);
//! assert_eq!(sim.now(), dgmc_des::SimTime::ZERO + SimDuration::micros(15));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sim;
mod time;

pub mod explorer;
pub mod mc;
pub mod net;
pub mod par;
pub mod stats;
pub mod trace;

pub use net::{
    Delivery, DeliveryKind, FaultPlan, FaultyNet, LinkFaults, LinkFlap, NetModel, NodeOutage,
};
pub use sim::{net_counters, Actor, ActorId, Ctx, Envelope, RunOutcome, Simulation};
pub use time::{SimDuration, SimTime};
pub use trace::NetStats;
