use crate::net::{DeliveryKind, NetModel};
use crate::stats::CounterHandle;
use crate::trace::{NetStats, TraceBuffer, TraceEvent};
use crate::{SimDuration, SimTime};
use dgmc_obs::{
    DecisionEvent, DecisionKind, FaultKind, MetricsRegistry, SharedObserver, SharedTracer,
    StampSnapshot, Trace,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Identifier of an actor registered with a [`Simulation`].
///
/// The D-GMC layers register one actor per network switch and keep
/// `ActorId(i) == NodeId(i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A message delivery: who sent what to whom.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// The recipient.
    pub to: ActorId,
    /// The sender, or `None` for externally injected events and self timers.
    pub from: Option<ActorId>,
    /// The payload.
    pub msg: M,
}

/// A simulated processing entity (a network switch, a workload driver, ...).
///
/// Actors never block: [`Actor::handle`] runs to completion at one instant of
/// simulated time, scheduling future work through the [`Ctx`]. Long-running
/// computations (the paper's `Tc`) are modeled by scheduling a completion
/// timer and reacting to it.
pub trait Actor<M> {
    /// Reacts to a delivered message.
    fn handle(&mut self, ctx: &mut Ctx<'_, M>, env: Envelope<M>);

    /// Optional downcasting hook for post-run inspection.
    ///
    /// Actors that want experiment harnesses to read their state return
    /// `Some(self)`; the default hides the actor.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    env: Envelope<M>,
    /// Causal span covering this delivery (0 when causal tracing is off or
    /// was off when the message was scheduled).
    span: u64,
}

// Order by (time, seq): FIFO among simultaneous events, hence deterministic.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A function rendering a message into a short trace label.
type Labeler<M> = Box<dyn Fn(&M) -> String>;

/// Why a simulation run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The safety event budget was exhausted (likely a livelock bug).
    EventBudgetExhausted,
}

/// The scheduling surface actors see while handling a message.
///
/// Borrows the simulation's queue and counters; all sends are timestamped
/// relative to the current instant.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    queue: &'a mut BinaryHeap<Reverse<Scheduled<M>>>,
    seq: &'a mut u64,
    metrics: &'a mut MetricsRegistry,
    net: Option<&'a mut (dyn NetModel + 'static)>,
    net_stats: &'a mut NetStats,
    observer: &'a SharedObserver,
    tracer: &'a SharedTracer,
    span_labeler: Option<&'a Labeler<M>>,
}

/// Counter names bumped by the simulator when a network model is installed.
pub mod net_counters {
    /// Actor-to-actor sends routed through the model.
    pub const SENT: &str = "net.sent";
    /// Messages hard-dropped by the model.
    pub const DROPPED: &str = "net.dropped";
    /// Extra copies injected by the model.
    pub const DUPLICATED: &str = "net.duplicated";
    /// Recovered retransmission rounds (late deliveries, not extra copies).
    pub const RETRANSMITS: &str = "net.retransmits";
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    fn push(&mut self, to: ActorId, from: Option<ActorId>, delay: SimDuration, msg: M) -> u64 {
        let at = self.now + delay;
        let labeler = self.span_labeler;
        let span = self.tracer.on_send(
            from.map(|a| a.0),
            to.0,
            self.now.as_nanos(),
            at.as_nanos(),
            || labeler.map_or_else(|| "msg".to_owned(), |l| l(&msg)),
        );
        *self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: *self.seq,
            env: Envelope { to, from, msg },
            span,
        }));
        span
    }

    fn emit_fault(&mut self, fault: FaultKind, to: ActorId) {
        let from = self.self_id;
        self.observer.emit(|now| DecisionEvent {
            at_nanos: now,
            mc: 0,
            switch: from.0,
            kind: DecisionKind::FaultInjected { fault, peer: to.0 },
            stamps: StampSnapshot::empty(),
        });
    }

    /// Schedules `msg` for delivery to `to` after `delay`, sent by the
    /// current actor.
    ///
    /// When a [`NetModel`] is installed on the simulation (see
    /// [`Simulation::set_net_model`]), the message is routed through it and
    /// may be delayed, duplicated, retransmitted or dropped; the model's
    /// verdict is mirrored into the [`net_counters`] metrics, the
    /// simulation-wide [`NetStats`], and `FaultInjected` decision events.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M)
    where
        M: Clone,
    {
        let Some(model) = self.net.as_deref_mut() else {
            self.push(to, Some(self.self_id), delay, msg);
            return;
        };
        let deliveries = model.route(self.self_id, to, self.now, delay);
        self.net_stats.sent += 1;
        *self.metrics.counter_slot(net_counters::SENT) += 1;
        if deliveries.is_empty() {
            self.net_stats.dropped += 1;
            *self.metrics.counter_slot(net_counters::DROPPED) += 1;
            self.emit_fault(FaultKind::Drop, to);
            // A dropped message still gets a (zero-length) span so traces
            // show where convergence time went: the span never dispatches.
            let now_ns = self.now.as_nanos();
            let labeler = self.span_labeler;
            let span = self
                .tracer
                .on_send(Some(self.self_id.0), to.0, now_ns, now_ns, || {
                    labeler.map_or_else(|| "msg".to_owned(), |l| l(&msg))
                });
            self.tracer.annotate(span, || "fault:drop".to_owned());
            return;
        }
        let mut msg = Some(msg);
        let last = deliveries.len() - 1;
        for (i, d) in deliveries.into_iter().enumerate() {
            let mut fault_note: Option<String> = None;
            match d.kind {
                DeliveryKind::Original => {}
                DeliveryKind::Retransmit(rounds) => {
                    self.net_stats.retransmits += rounds as u64;
                    *self.metrics.counter_slot(net_counters::RETRANSMITS) += rounds as u64;
                    self.emit_fault(FaultKind::Retransmit, to);
                    fault_note = Some(format!("fault:retransmit rounds={rounds}"));
                }
                DeliveryKind::Duplicate => {
                    self.net_stats.duplicated += 1;
                    *self.metrics.counter_slot(net_counters::DUPLICATED) += 1;
                    self.emit_fault(FaultKind::Duplicate, to);
                    fault_note = Some("fault:duplicate".to_owned());
                }
            }
            self.net_stats.delivered += 1;
            // Unwrap audit: `msg` is Some until the `i == last` arm takes it,
            // and the loop ends there — structural invariant, not a race.
            let m = if i == last {
                msg.take().expect("last delivery consumes the message")
            } else {
                msg.as_ref().expect("message present until last").clone()
            };
            let jitter = d.delay.as_nanos().saturating_sub(delay.as_nanos());
            let span = self.push(to, Some(self.self_id), d.delay, m);
            if let Some(note) = fault_note {
                self.tracer.annotate(span, || note);
            }
            if jitter > 0 {
                self.tracer
                    .annotate(span, || format!("fault:jitter +{jitter}ns"));
            }
        }
    }

    /// Schedules a timer: `msg` is delivered back to the current actor after
    /// `delay` with `from == None`. Timers are not network traffic and
    /// bypass any installed [`NetModel`].
    pub fn schedule_self(&mut self, delay: SimDuration, msg: M) {
        self.push(self.self_id, None, delay, msg);
    }

    /// Returns a handle to the named simulation-wide counter.
    ///
    /// Counters are created on first use and readable after the run through
    /// [`Simulation::counter_value`]. The name is interned once by the
    /// registry; repeat lookups do not allocate.
    pub fn counter(&mut self, name: &str) -> CounterHandle<'_> {
        CounterHandle::from_slot(self.metrics.counter_slot(name))
    }

    /// The simulation-wide metrics registry (counters and histograms).
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }
}

/// The event-driven simulation engine.
///
/// Deterministic by construction: events at equal instants are delivered in
/// scheduling order, and all randomness lives in the actors (which should be
/// seeded explicitly).
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    seq: u64,
    now: SimTime,
    metrics: MetricsRegistry,
    observer: SharedObserver,
    events_processed: u64,
    event_budget: u64,
    trace: Option<(TraceBuffer, Labeler<M>)>,
    tracer: SharedTracer,
    span_labeler: Option<Labeler<M>>,
    net: Option<Box<dyn NetModel>>,
    net_stats: NetStats,
}

impl<M> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.actors.len())
            .field("pending", &self.queue.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulation<M> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            metrics: MetricsRegistry::new(),
            observer: SharedObserver::new(),
            events_processed: 0,
            event_budget: u64::MAX,
            trace: None,
            tracer: SharedTracer::new(),
            span_labeler: None,
            net: None,
            net_stats: NetStats::default(),
        }
    }

    /// Installs a network model on the actor-to-actor delivery path.
    ///
    /// Every subsequent [`Ctx::send`] is routed through it; timers and
    /// [`Simulation::inject`] are unaffected. See [`crate::net`].
    pub fn set_net_model(&mut self, model: impl NetModel + 'static) {
        self.net = Some(Box::new(model));
    }

    /// Removes the network model; delivery reverts to the exact requested
    /// delays.
    pub fn clear_net_model(&mut self) {
        self.net = None;
    }

    /// Message accounting across the network model (all zeros when no model
    /// was ever installed).
    pub fn net_stats(&self) -> &NetStats {
        &self.net_stats
    }

    /// Caps the total number of events the engine will process, as a
    /// protection against protocol livelocks. Default: unlimited.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Enables delivery tracing: the `labeler` renders each message into a
    /// short label and the `capacity` most recent deliveries are retained.
    pub fn enable_trace(&mut self, capacity: usize, labeler: impl Fn(&M) -> String + 'static) {
        self.trace = Some((TraceBuffer::new(capacity), Box::new(labeler)));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref().map(|(buf, _)| buf)
    }

    /// Enables causal span tracing: from now on every injected event opens a
    /// root span, every send/timer scheduled during a dispatch becomes a
    /// child span of the dispatching delivery, and the `labeler` renders
    /// message payloads into span labels.
    ///
    /// Spans accumulate until [`Simulation::take_causal_trace`]. Enable at a
    /// quiescent instant (empty queue): messages scheduled before enabling
    /// carry no span, so their sends would open spurious roots.
    pub fn enable_causal_trace(&mut self, labeler: impl Fn(&M) -> String + 'static) {
        self.tracer.enable();
        self.span_labeler = Some(Box::new(labeler));
    }

    /// The shared causal tracer (disabled until
    /// [`Simulation::enable_causal_trace`]). Clone it into an observer sink
    /// to annotate spans with decision events, or use it to annotate the
    /// currently dispatching span from harness code.
    pub fn causal_tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// Stops causal tracing and returns the collected trace (None when
    /// tracing was never enabled).
    pub fn take_causal_trace(&mut self) -> Option<Trace> {
        self.tracer.take()
    }

    /// Registers an actor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the actor count would exceed the `u32` id space (a silent
    /// `as u32` truncation here would alias two distinct actors).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = u32::try_from(self.actors.len())
            .expect("actor count exceeds the u32 ActorId space — ids would alias");
        self.actors.push(Some(actor));
        ActorId(id)
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns `true` if no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Injects an external event for `to`, `delay` after the current instant.
    ///
    /// With causal tracing enabled, each injection opens a root span (the
    /// protocol-initiating event of one operation).
    pub fn inject(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        let at = self.now + delay;
        let labeler = self.span_labeler.as_ref();
        let span = self
            .tracer
            .on_send(None, to.0, self.now.as_nanos(), at.as_nanos(), || {
                labeler.map_or_else(|| "msg".to_owned(), |l| l(&msg))
            });
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            env: Envelope {
                to,
                from: None,
                msg,
            },
            span,
        }));
    }

    /// Reads a counter's value (0 if the counter was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics.counter_value(name)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.metrics.counters_map()
    }

    /// Read access to the metrics registry (counters and histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry between runs.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The decision-event observer shared with protocol actors.
    ///
    /// Disabled (single-branch no-op) until a sink is attached, e.g. via
    /// [`dgmc_obs::SharedObserver::attach_log`]. The engine keeps its clock
    /// in sync with simulated time during [`Simulation::run_until`]. Actors
    /// receive a clone of this handle when they are built — see
    /// the D-GMC switch layer for the pattern.
    pub fn observer(&self) -> &SharedObserver {
        &self.observer
    }

    /// Resets all counters and histograms to zero (values, not names).
    pub fn reset_counters(&mut self) {
        self.metrics.reset();
    }

    /// Grants read access to a registered actor between runs.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the actor is currently being dispatched.
    pub fn actor_ref(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id.index()]
            .as_deref()
            .expect("actor is not mid-dispatch")
    }

    /// Downcasts a registered actor to a concrete type via
    /// [`Actor::as_any`].
    ///
    /// Returns `None` when the actor does not expose itself or is of a
    /// different type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the actor is currently being dispatched.
    pub fn actor_as<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actor_ref(id).as_any()?.downcast_ref::<T>()
    }

    /// Grants mutable access to a registered actor between runs.
    ///
    /// Intended for workload drivers and post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the actor is currently being dispatched.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id.index()]
            .as_deref_mut()
            .expect("actor is not mid-dispatch")
    }

    /// Runs until the queue drains.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the first event later than `horizon`
    /// would be delivered (that event stays queued).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            let at = match self.queue.peek() {
                None => return RunOutcome::Quiescent,
                Some(Reverse(s)) => s.at,
            };
            if at > horizon {
                return RunOutcome::HorizonReached;
            }
            // Unwrap audit: the peek above returned Some and nothing popped
            // since (single-threaded loop) — structural invariant.
            let Reverse(scheduled) = self.queue.pop().expect("peeked");
            debug_assert!(scheduled.at >= self.now, "event from the past");
            self.now = scheduled.at;
            self.observer.set_now(self.now.as_nanos());
            self.events_processed += 1;
            if let Some((buf, labeler)) = &mut self.trace {
                buf.push(TraceEvent {
                    at: scheduled.at,
                    to: scheduled.env.to,
                    from: scheduled.env.from,
                    label: labeler(&scheduled.env.msg),
                });
            }
            let idx = scheduled.env.to.index();
            // Take the actor out so it can borrow the queue through Ctx.
            let mut actor = self
                .actors
                .get_mut(idx)
                .and_then(Option::take)
                .unwrap_or_else(|| {
                    panic!("message delivered to unknown actor {}", scheduled.env.to)
                });
            let mut ctx = Ctx {
                now: self.now,
                self_id: scheduled.env.to,
                queue: &mut self.queue,
                seq: &mut self.seq,
                metrics: &mut self.metrics,
                net: self.net.as_deref_mut(),
                net_stats: &mut self.net_stats,
                observer: &self.observer,
                tracer: &self.tracer,
                span_labeler: self.span_labeler.as_ref(),
            };
            self.tracer.begin_dispatch(scheduled.span);
            actor.handle(&mut ctx, scheduled.env);
            self.tracer.end_dispatch();
            self.actors[idx] = Some(actor);
        }
    }

    /// Runs a single event if one is pending; returns its delivery time.
    pub fn step(&mut self) -> Option<SimTime> {
        let at = self.queue.peek().map(|Reverse(s)| s.at)?;
        self.run_until(at);
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Delivery;

    /// Records (time, payload) of everything it receives; optionally pings a
    /// peer.
    struct Recorder {
        seen: Vec<(SimTime, u64)>,
        forward_to: Option<ActorId>,
    }

    impl Actor<u64> for Recorder {
        fn handle(&mut self, ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
            self.seen.push((ctx.now(), env.msg));
            ctx.counter("received").incr();
            if let Some(peer) = self.forward_to {
                if env.msg > 0 {
                    ctx.send(peer, SimDuration::micros(10), env.msg - 1);
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            forward_to: None,
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(recorder()));
        sim.inject(a, SimDuration::micros(30), 3);
        sim.inject(a, SimDuration::micros(10), 1);
        sim.inject(a, SimDuration::micros(20), 2);
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        // Inspect through downcast-free pattern: replace actor with a probe.
        assert_eq!(sim.counter_value("received"), 3);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::micros(30));
    }

    #[test]
    fn simultaneous_events_deliver_fifo() {
        struct Probe(Vec<u64>);
        impl Actor<u64> for Probe {
            fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
                self.0.push(env.msg);
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Probe(Vec::new())));
        for k in 0..5 {
            sim.inject(a, SimDuration::micros(5), k);
        }
        sim.run_to_quiescence();
        // Read back through actor_mut: we know the concrete type.
        // (Simulation has no downcasting; re-register pattern.)
        // Instead verify via counters-free approach: drop sim and assert order
        // by using a shared Vec would need interior mutability; simplest is to
        // re-run with a counter asserting monotone order inside the actor.
        struct OrderCheck(u64);
        impl Actor<u64> for OrderCheck {
            fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
                assert_eq!(env.msg, self.0, "FIFO violated");
                self.0 += 1;
            }
        }
        let mut sim2 = Simulation::new();
        let b = sim2.add_actor(Box::new(OrderCheck(0)));
        for k in 0..5 {
            sim2.inject(b, SimDuration::micros(5), k);
        }
        assert_eq!(sim2.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(sim2.events_processed(), 5);
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Recorder {
            seen: Vec::new(),
            forward_to: None,
        }));
        let b = sim.add_actor(Box::new(Recorder {
            seen: Vec::new(),
            forward_to: Some(a),
        }));
        // b forwards counting down: 2 -> a? No: b.forward_to = a, a doesn't forward.
        sim.inject(b, SimDuration::ZERO, 2);
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value("received"), 2);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::micros(10));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(recorder()));
        sim.inject(a, SimDuration::micros(10), 1);
        sim.inject(a, SimDuration::micros(100), 2);
        let outcome = sim.run_until(SimTime::ZERO + SimDuration::micros(50));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.counter_value("received"), 1);
        assert!(!sim.is_quiescent());
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(sim.counter_value("received"), 2);
    }

    #[test]
    fn event_budget_stops_livelocks() {
        struct Looper;
        impl Actor<u64> for Looper {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, _env: Envelope<u64>) {
                ctx.schedule_self(SimDuration::micros(1), 0);
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Looper));
        sim.set_event_budget(100);
        sim.inject(a, SimDuration::ZERO, 0);
        assert_eq!(sim.run_to_quiescence(), RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn schedule_self_has_no_sender() {
        struct TimerCheck;
        impl Actor<u64> for TimerCheck {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
                if env.msg == 0 {
                    ctx.schedule_self(SimDuration::micros(1), 1);
                } else {
                    assert_eq!(env.from, None, "timers carry no sender");
                    assert_eq!(env.to, ctx.self_id());
                }
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(TimerCheck));
        sim.inject(a, SimDuration::ZERO, 0);
        sim.run_to_quiescence();
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn step_processes_one_instant() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(recorder()));
        sim.inject(a, SimDuration::micros(5), 1);
        sim.inject(a, SimDuration::micros(7), 2);
        assert_eq!(sim.step(), Some(SimTime::ZERO + SimDuration::micros(5)));
        assert_eq!(sim.counter_value("received"), 1);
        assert_eq!(sim.step(), Some(SimTime::ZERO + SimDuration::micros(7)));
        assert_eq!(sim.step(), None);
    }

    #[test]
    fn reset_counters_clears_values() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(recorder()));
        sim.inject(a, SimDuration::ZERO, 1);
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value("received"), 1);
        sim.reset_counters();
        assert_eq!(sim.counter_value("received"), 0);
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn delivery_to_unknown_actor_panics() {
        let mut sim: Simulation<u64> = Simulation::new();
        sim.inject(ActorId(7), SimDuration::ZERO, 0);
        sim.run_to_quiescence();
    }

    #[test]
    fn causal_trace_builds_span_trees_across_actors() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(recorder()));
        let b = sim.add_actor(Box::new(Recorder {
            seen: Vec::new(),
            forward_to: Some(a),
        }));
        sim.enable_causal_trace(|msg| format!("m{msg}"));
        sim.inject(b, SimDuration::micros(5), 2);
        sim.run_to_quiescence();
        let trace = sim.take_causal_trace().unwrap();
        trace.validate().unwrap();
        // Root: the injected m2 to b; child: b's forwarded m1 to a.
        assert_eq!(trace.len(), 2);
        let root = &trace.spans[0];
        assert_eq!((root.parent, root.from, root.to), (0, None, b.0));
        assert_eq!(root.label, "m2");
        assert_eq!(root.end_ns, 5_000);
        let child = &trace.spans[1];
        assert_eq!((child.parent, child.depth), (1, 1));
        assert_eq!(child.from, Some(b.0));
        assert_eq!(child.label, "m1");
        assert_eq!((child.start_ns, child.end_ns), (5_000, 15_000));
        // Tracing is off after take.
        assert!(sim.take_causal_trace().is_none());
    }

    #[test]
    fn timers_become_child_spans_of_their_dispatch() {
        struct TimerActor;
        impl Actor<u64> for TimerActor {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
                if env.msg == 0 {
                    ctx.schedule_self(SimDuration::micros(3), 1);
                }
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(TimerActor));
        sim.enable_causal_trace(|msg| format!("t{msg}"));
        sim.inject(a, SimDuration::ZERO, 0);
        sim.run_to_quiescence();
        let trace = sim.take_causal_trace().unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.spans[1].parent, 1);
        assert_eq!(trace.spans[1].from, None);
        assert_eq!(trace.spans[1].label, "t1");
    }

    /// Drops the first message, duplicates the second (with jitter on the
    /// copy), then delivers cleanly.
    struct ScriptedNet(u32);
    impl NetModel for ScriptedNet {
        fn route(
            &mut self,
            _from: ActorId,
            _to: ActorId,
            _now: SimTime,
            base: SimDuration,
        ) -> Vec<Delivery> {
            self.0 += 1;
            match self.0 {
                1 => Vec::new(),
                2 => vec![
                    Delivery {
                        delay: base,
                        kind: DeliveryKind::Original,
                    },
                    Delivery {
                        delay: base + SimDuration::nanos(250),
                        kind: DeliveryKind::Duplicate,
                    },
                ],
                _ => vec![Delivery {
                    delay: base,
                    kind: DeliveryKind::Original,
                }],
            }
        }
    }

    #[test]
    fn fault_outcomes_annotate_spans() {
        struct Sender;
        impl Actor<u64> for Sender {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, env: Envelope<u64>) {
                if env.from.is_none() && env.to == ActorId(0) {
                    // Two sends: the first is dropped, the second duplicated.
                    ctx.send(ActorId(1), SimDuration::micros(1), 10);
                    ctx.send(ActorId(1), SimDuration::micros(1), 11);
                }
            }
        }
        struct Sink;
        impl Actor<u64> for Sink {
            fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, _env: Envelope<u64>) {}
        }
        let mut sim = Simulation::new();
        let a = sim.add_actor(Box::new(Sender));
        sim.add_actor(Box::new(Sink));
        sim.set_net_model(ScriptedNet(0));
        sim.enable_causal_trace(|msg| format!("m{msg}"));
        sim.inject(a, SimDuration::ZERO, 0);
        sim.run_to_quiescence();
        let trace = sim.take_causal_trace().unwrap();
        trace.validate().unwrap();
        // Root + dropped m10 + original m11 + duplicate m11.
        assert_eq!(trace.len(), 4);
        let dropped = &trace.spans[1];
        assert_eq!(dropped.notes, vec!["fault:drop".to_owned()]);
        assert_eq!(dropped.start_ns, dropped.end_ns);
        assert!(trace.spans[2].notes.is_empty());
        let dup = &trace.spans[3];
        assert_eq!(
            dup.notes,
            vec![
                "fault:duplicate".to_owned(),
                "fault:jitter +250ns".to_owned()
            ]
        );
    }
}
