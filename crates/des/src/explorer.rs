//! Seeded schedule exploration with replayable failure bundles.
//!
//! Deterministic simulation testing in the Helmy-style systematic-testing
//! tradition: a *scenario* is a pure function of a seed (topology, workload,
//! fault plan and every network-model coin flip all derive from it), so
//! running the scenario across N seeds explores N distinct schedules, and
//! any failing schedule is reproduced exactly by re-running its seed.
//!
//! This module is protocol-agnostic: [`explore`] drives a caller-supplied
//! closure from seed to [`SeedOutcome`] and aggregates an [`ExploreReport`];
//! [`ReproBundle`] packages a failing seed together with the fault-plan JSON
//! and the tail of the decision timeline into one self-contained JSON file.
//! The D-GMC scenario assembly and the protocol invariant suite live in the
//! `dgmc-core`/`dgmc-experiments` crates.

use crate::par;
use dgmc_obs::JsonValue;
use std::fmt;
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// How the explorer walks the schedule space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExploreMode {
    /// Randomized seed sweep: each seed derives one schedule (DESIGN.md §8).
    #[default]
    Sweep,
    /// Bounded systematic exploration: enumerate *all* delivery
    /// interleavings of a small scenario with the [`crate::mc`] model
    /// checker (DESIGN.md §11).
    Systematic,
}

impl fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreMode::Sweep => write!(f, "sweep"),
            ExploreMode::Systematic => write!(f, "systematic"),
        }
    }
}

/// What seed range to run and how to react to failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Sweep the seed space or systematically enumerate interleavings.
    pub mode: ExploreMode,
    /// First seed checked (`Sweep` mode only).
    pub start_seed: u64,
    /// Number of consecutive seeds checked (`Sweep` mode only).
    pub seeds: u64,
    /// Stop at the first failing seed instead of completing the sweep.
    pub fail_fast: bool,
    /// Worker threads sharing the sweep (`1` = serial). The report is
    /// byte-identical for every value; only wall-clock changes.
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            mode: ExploreMode::Sweep,
            start_seed: 0,
            seeds: 100,
            fail_fast: false,
            jobs: 1,
        }
    }
}

impl ExploreConfig {
    /// The exclusive end of the seed range, `start_seed + seeds`.
    ///
    /// # Panics
    ///
    /// Panics if the range overflows `u64`. This used to be a silent
    /// `saturating_add`, which *truncated* the sweep: a config asking for
    /// seeds near `u64::MAX` would check fewer schedules than requested and
    /// still report "all seeds passed" — the worst failure mode for a
    /// correctness tool. An impossible range is a config error; reject it.
    pub fn end_seed(&self) -> u64 {
        self.start_seed
            .checked_add(self.seeds)
            .expect("seed range overflows u64 (start_seed + seeds); reduce seeds or start_seed")
    }
}

/// One invariant violation observed in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the violated invariant.
    pub invariant: String,
    /// Human-readable specifics (which switches, which stamps, ...).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// The result of checking one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedOutcome {
    /// The seed that produced this schedule.
    pub seed: u64,
    /// All invariant violations found (empty = the seed passed).
    pub violations: Vec<Violation>,
}

impl SeedOutcome {
    /// A passing outcome.
    pub fn pass(seed: u64) -> SeedOutcome {
        SeedOutcome {
            seed,
            violations: Vec::new(),
        }
    }

    /// Whether the seed upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregated result of a seed sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Seeds actually run (smaller than requested under `fail_fast`).
    pub checked: u64,
    /// The failing outcomes, in seed order.
    pub failures: Vec<SeedOutcome>,
}

impl ExploreReport {
    /// Whether every checked seed passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The first failing seed, if any.
    pub fn first_failing_seed(&self) -> Option<u64> {
        self.failures.first().map(|f| f.seed)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self.first_failing_seed() {
            None => format!("{} seeds checked, all invariants held", self.checked),
            Some(seed) => format!(
                "{} seeds checked, {} failed (first failing seed {seed})",
                self.checked,
                self.failures.len()
            ),
        }
    }

    /// Renders the report as one stable JSON object (`checked`, `passed` and
    /// the failures in seed order). Used by the CI serial-versus-parallel
    /// diff gate: two runs agree iff their rendered reports are
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let failures = self
            .failures
            .iter()
            .map(|f| {
                let violations = f
                    .violations
                    .iter()
                    .map(|v| {
                        JsonValue::obj(vec![
                            ("invariant", JsonValue::Str(v.invariant.clone())),
                            ("detail", JsonValue::Str(v.detail.clone())),
                        ])
                    })
                    .collect();
                JsonValue::obj(vec![
                    ("seed", JsonValue::U64(f.seed)),
                    ("violations", JsonValue::Arr(violations)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("checked", JsonValue::U64(self.checked)),
            ("passed", JsonValue::Bool(self.passed())),
            ("failures", JsonValue::Arr(failures)),
        ])
        .to_json()
    }
}

/// Runs `run` over the configured seed range and aggregates the outcomes.
///
/// The closure owns the scenario: everything it does must derive from the
/// seed it is given, or failures will not replay.
///
/// # Panics
///
/// Panics if the seed range overflows (see [`ExploreConfig::end_seed`]).
pub fn explore(config: &ExploreConfig, mut run: impl FnMut(u64) -> SeedOutcome) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in config.start_seed..config.end_seed() {
        let outcome = run(seed);
        debug_assert_eq!(outcome.seed, seed, "scenario must report its own seed");
        report.checked += 1;
        if !outcome.passed() {
            report.failures.push(outcome);
            if config.fail_fast {
                break;
            }
        }
    }
    report
}

/// Sharded variant of [`explore`]: the seed range is split across
/// `config.jobs` workers (see [`par::sweep`]), each owning the per-worker
/// state built by `init` (typically a scratch SPF cache — anything reusable
/// across seeds that must not cross threads).
///
/// The report is aggregated **in seed order** and canonicalized, so it is
/// byte-identical to the serial [`explore`] for every `jobs` value: without
/// `fail_fast` every seed appears exactly once; with `fail_fast` the report
/// is truncated at the *smallest* failing seed even if a worker racing ahead
/// also failed on a later one (the serial sweep would never have reached it).
///
/// # Panics
///
/// Panics if the seed range overflows (see [`ExploreConfig::end_seed`]) or
/// the seed count does not fit the address space.
pub fn explore_sharded<S>(
    config: &ExploreConfig,
    init: impl Fn(usize) -> S + Sync,
    run: impl Fn(&mut S, u64) -> SeedOutcome + Sync,
) -> ExploreReport {
    let _ = config.end_seed(); // reject overflowing ranges up front
    let tasks = usize::try_from(config.seeds).expect("seed count exceeds the address space");
    let start = config.start_seed;
    let slots = par::sweep(
        config.jobs.max(1),
        tasks,
        init,
        |state, index| {
            let seed = start + u64::try_from(index).expect("index bounded by seed count");
            let outcome = run(state, seed);
            debug_assert_eq!(outcome.seed, seed, "scenario must report its own seed");
            outcome
        },
        |outcome| config.fail_fast && !outcome.passed(),
    );

    // Completed slots form a prefix of the range (par::sweep claims indices
    // in increasing order and drains in-flight seeds), so a seed-ordered
    // scan reconstructs exactly what the serial sweep would have reported.
    let mut report = ExploreReport::default();
    for outcome in slots.into_iter().flatten() {
        report.checked += 1;
        if !outcome.passed() {
            report.failures.push(outcome);
            if config.fail_fast {
                break;
            }
        }
    }
    report
}

/// A minimized, self-contained description of one failing run.
///
/// Contains everything needed to reproduce and diagnose the failure: the
/// seed (the schedule *is* the seed), the fault plan that was derived from
/// it, the violations, the tail of the decision timeline from a re-run with
/// the observer attached, and the one replay command.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproBundle {
    /// The failing seed.
    pub seed: u64,
    /// Name of the scenario that failed.
    pub scenario: String,
    /// The fault plan of the failing run, as rendered JSON.
    pub plan: JsonValue,
    /// The invariant violations.
    pub violations: Vec<Violation>,
    /// Rendered tail (oldest first) of the decision-event timeline.
    pub timeline: Vec<String>,
    /// One-command replay hint.
    pub replay: String,
}

impl ReproBundle {
    /// Renders the bundle as one pretty-enough JSON object.
    pub fn to_json(&self) -> String {
        let violations = self
            .violations
            .iter()
            .map(|v| {
                JsonValue::obj(vec![
                    ("invariant", JsonValue::Str(v.invariant.clone())),
                    ("detail", JsonValue::Str(v.detail.clone())),
                ])
            })
            .collect();
        let timeline = self
            .timeline
            .iter()
            .map(|line| JsonValue::Str(line.clone()))
            .collect();
        JsonValue::obj(vec![
            ("seed", JsonValue::U64(self.seed)),
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("replay", JsonValue::Str(self.replay.clone())),
            ("violations", JsonValue::Arr(violations)),
            ("fault_plan", self.plan.clone()),
            ("timeline", JsonValue::Arr(timeline)),
        ])
        .to_json()
    }

    /// The filename this bundle writes to: derived from the seed (never a
    /// shared counter or fixed name), so concurrent workers failing on
    /// different seeds can never race for the same path.
    pub fn file_name(&self) -> String {
        format!("repro-seed-{}.json", self.seed)
    }

    /// Writes the bundle to `dir/repro-seed-<seed>.json`, creating `dir` if
    /// needed, and returns the path.
    ///
    /// The file is opened create-new: an existing bundle (a stale one from
    /// an earlier sweep, or a concurrent writer that got there first) is
    /// never silently overwritten.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::AlreadyExists`] if the bundle file already exists;
    /// otherwise propagates filesystem errors.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Like [`ReproBundle::write`], but replaces an existing file — the
    /// explicit opt-in for interactive replays that intentionally refresh a
    /// stale bundle.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_replacing(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Renders a human-readable failure report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario '{}' failed at seed {}\nreplay: {}\n",
            self.scenario, self.seed, self.replay
        ));
        for v in &self.violations {
            out.push_str(&format!("  violated {v}\n"));
        }
        if !self.timeline.is_empty() {
            out.push_str("decision timeline (tail):\n");
            for line in &self.timeline {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(seed: u64) -> SeedOutcome {
        SeedOutcome {
            seed,
            violations: vec![Violation {
                invariant: "agreement".into(),
                detail: format!("seed {seed} diverged"),
            }],
        }
    }

    #[test]
    fn explore_checks_the_whole_range_and_collects_failures() {
        let config = ExploreConfig {
            start_seed: 10,
            seeds: 5,
            ..ExploreConfig::default()
        };
        let mut seen = Vec::new();
        let report = explore(&config, |seed| {
            seen.push(seed);
            if seed % 2 == 0 {
                fail(seed)
            } else {
                SeedOutcome::pass(seed)
            }
        });
        assert_eq!(seen, vec![10, 11, 12, 13, 14]);
        assert_eq!(report.checked, 5);
        assert_eq!(report.first_failing_seed(), Some(10));
        assert_eq!(report.failures.len(), 3);
        assert!(!report.passed());
        assert!(report.summary().contains("first failing seed 10"));
    }

    #[test]
    fn fail_fast_stops_at_the_first_failure() {
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 100,
            fail_fast: true,
            ..ExploreConfig::default()
        };
        let report = explore(&config, |seed| {
            if seed == 3 {
                fail(seed)
            } else {
                SeedOutcome::pass(seed)
            }
        });
        assert_eq!(report.checked, 4, "stopped right after seed 3");
        assert_eq!(report.first_failing_seed(), Some(3));
    }

    #[test]
    fn seed_range_ending_exactly_at_u64_max_is_accepted() {
        // The topmost legal range: the exclusive end lands on u64::MAX.
        let config = ExploreConfig {
            start_seed: u64::MAX - 2,
            seeds: 2,
            ..ExploreConfig::default()
        };
        let mut seen = Vec::new();
        let report = explore(&config, |seed| {
            seen.push(seed);
            SeedOutcome::pass(seed)
        });
        assert_eq!(seen, vec![u64::MAX - 2, u64::MAX - 1]);
        assert_eq!(report.checked, 2, "no silent truncation at the top");
    }

    #[test]
    #[should_panic(expected = "seed range overflows u64")]
    fn overflowing_seed_range_is_rejected_not_truncated() {
        let config = ExploreConfig {
            start_seed: u64::MAX - 1,
            seeds: 3,
            ..ExploreConfig::default()
        };
        explore(&config, SeedOutcome::pass);
    }

    #[test]
    #[should_panic(expected = "seed range overflows u64")]
    fn sharded_explorer_rejects_overflowing_ranges_too() {
        let config = ExploreConfig {
            start_seed: u64::MAX,
            seeds: 1,
            jobs: 2,
            ..ExploreConfig::default()
        };
        explore_sharded(&config, |_| (), |(), seed| SeedOutcome::pass(seed));
    }

    #[test]
    fn sharded_explorer_handles_the_topmost_legal_range() {
        let config = ExploreConfig {
            start_seed: u64::MAX - 3,
            seeds: 3,
            jobs: 2,
            ..ExploreConfig::default()
        };
        let report = explore_sharded(&config, |_| (), |(), seed| SeedOutcome::pass(seed));
        assert_eq!(report.checked, 3);
        assert!(report.passed());
    }

    #[test]
    fn all_passing_sweep_summarizes_cleanly() {
        let report = explore(&ExploreConfig::default(), SeedOutcome::pass);
        assert!(report.passed());
        assert_eq!(report.checked, 100);
        assert!(report.summary().contains("all invariants held"));
    }

    #[test]
    fn sharded_reports_are_byte_identical_to_serial() {
        let scenario = |seed: u64| {
            if seed % 7 == 3 {
                fail(seed)
            } else {
                SeedOutcome::pass(seed)
            }
        };
        for fail_fast in [false, true] {
            let serial = explore(
                &ExploreConfig {
                    start_seed: 5,
                    seeds: 40,
                    fail_fast,
                    jobs: 1,
                    ..ExploreConfig::default()
                },
                scenario,
            );
            for jobs in [1, 2, 4, 8] {
                let config = ExploreConfig {
                    start_seed: 5,
                    seeds: 40,
                    fail_fast,
                    jobs,
                    ..ExploreConfig::default()
                };
                let sharded = explore_sharded(&config, |_| (), |(), seed| scenario(seed));
                assert_eq!(
                    serial, sharded,
                    "jobs={jobs} fail_fast={fail_fast} diverged from serial"
                );
                assert_eq!(serial.to_json(), sharded.to_json());
            }
        }
    }

    #[test]
    fn sharded_fail_fast_truncates_at_the_smallest_failing_seed() {
        // Every seed from 10 on fails; whichever worker finishes first, the
        // canonical report must stop at seed 10 exactly like the serial run.
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 64,
            fail_fast: true,
            jobs: 4,
            ..ExploreConfig::default()
        };
        let report = explore_sharded(
            &config,
            |_| (),
            |(), seed| {
                if seed >= 10 {
                    fail(seed)
                } else {
                    SeedOutcome::pass(seed)
                }
            },
        );
        assert_eq!(report.checked, 11);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.first_failing_seed(), Some(10));
    }

    #[test]
    fn sharded_workers_get_private_state() {
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 30,
            fail_fast: false,
            jobs: 3,
            ..ExploreConfig::default()
        };
        // Per-worker counters: each worker increments only its own state, so
        // the per-seed work never needs synchronization.
        let report = explore_sharded(
            &config,
            |_worker| 0u64,
            |ran, seed| {
                *ran += 1;
                SeedOutcome::pass(seed)
            },
        );
        assert_eq!(report.checked, 30);
        assert!(report.passed());
    }

    #[test]
    fn report_json_is_stable() {
        let report = ExploreReport {
            checked: 3,
            failures: vec![fail(2)],
        };
        assert_eq!(
            report.to_json(),
            r#"{"checked":3,"passed":false,"failures":[{"seed":2,"violations":[{"invariant":"agreement","detail":"seed 2 diverged"}]}]}"#
        );
    }

    #[test]
    fn bundle_write_is_create_new_and_replacing_is_explicit() {
        let bundle = ReproBundle {
            seed: 5,
            scenario: "chaos".into(),
            plan: JsonValue::obj(vec![]),
            violations: Vec::new(),
            timeline: Vec::new(),
            replay: "replay".into(),
        };
        let dir = std::env::temp_dir().join(format!("dgmc-bundle-cn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = bundle.write(&dir).unwrap();
        assert!(path.ends_with("repro-seed-5.json"));
        let err = bundle
            .write(&dir)
            .expect_err("second write must not clobber");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let replaced = bundle.write_replacing(&dir).unwrap();
        assert_eq!(replaced, path);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bundle_round_trips_to_disk() {
        let bundle = ReproBundle {
            seed: 77,
            scenario: "chaos".into(),
            plan: JsonValue::obj(vec![("loss", JsonValue::F64(0.1))]),
            violations: vec![Violation {
                invariant: "tree".into(),
                detail: "cycle at sw3".into(),
            }],
            timeline: vec!["[1.000us] sw0 mc1 ProposalFlooded".into()],
            replay: "cargo run --bin explore -- --seed 77".into(),
        };
        let json = bundle.to_json();
        assert!(json.contains(r#""seed":77"#), "{json}");
        assert!(json.contains(r#""fault_plan":{"loss":0.1}"#), "{json}");
        assert!(json.contains("ProposalFlooded"), "{json}");
        let dir = std::env::temp_dir().join(format!("dgmc-explorer-{}", std::process::id()));
        let path = bundle.write(&dir).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), json);
        assert!(path.ends_with("repro-seed-77.json"));
        let rendered = bundle.render();
        assert!(rendered.contains("failed at seed 77"));
        assert!(rendered.contains("violated tree: cycle at sw3"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
