//! Seeded schedule exploration with replayable failure bundles.
//!
//! Deterministic simulation testing in the Helmy-style systematic-testing
//! tradition: a *scenario* is a pure function of a seed (topology, workload,
//! fault plan and every network-model coin flip all derive from it), so
//! running the scenario across N seeds explores N distinct schedules, and
//! any failing schedule is reproduced exactly by re-running its seed.
//!
//! This module is protocol-agnostic: [`explore`] drives a caller-supplied
//! closure from seed to [`SeedOutcome`] and aggregates an [`ExploreReport`];
//! [`ReproBundle`] packages a failing seed together with the fault-plan JSON
//! and the tail of the decision timeline into one self-contained JSON file.
//! The D-GMC scenario assembly and the protocol invariant suite live in the
//! `dgmc-core`/`dgmc-experiments` crates.

use dgmc_obs::JsonValue;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What seed range to run and how to react to failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// First seed checked.
    pub start_seed: u64,
    /// Number of consecutive seeds checked.
    pub seeds: u64,
    /// Stop at the first failing seed instead of completing the sweep.
    pub fail_fast: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            start_seed: 0,
            seeds: 100,
            fail_fast: false,
        }
    }
}

/// One invariant violation observed in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the violated invariant.
    pub invariant: String,
    /// Human-readable specifics (which switches, which stamps, ...).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// The result of checking one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedOutcome {
    /// The seed that produced this schedule.
    pub seed: u64,
    /// All invariant violations found (empty = the seed passed).
    pub violations: Vec<Violation>,
}

impl SeedOutcome {
    /// A passing outcome.
    pub fn pass(seed: u64) -> SeedOutcome {
        SeedOutcome {
            seed,
            violations: Vec::new(),
        }
    }

    /// Whether the seed upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregated result of a seed sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Seeds actually run (smaller than requested under `fail_fast`).
    pub checked: u64,
    /// The failing outcomes, in seed order.
    pub failures: Vec<SeedOutcome>,
}

impl ExploreReport {
    /// Whether every checked seed passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The first failing seed, if any.
    pub fn first_failing_seed(&self) -> Option<u64> {
        self.failures.first().map(|f| f.seed)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self.first_failing_seed() {
            None => format!("{} seeds checked, all invariants held", self.checked),
            Some(seed) => format!(
                "{} seeds checked, {} failed (first failing seed {seed})",
                self.checked,
                self.failures.len()
            ),
        }
    }
}

/// Runs `run` over the configured seed range and aggregates the outcomes.
///
/// The closure owns the scenario: everything it does must derive from the
/// seed it is given, or failures will not replay.
pub fn explore(config: &ExploreConfig, mut run: impl FnMut(u64) -> SeedOutcome) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in config.start_seed..config.start_seed.saturating_add(config.seeds) {
        let outcome = run(seed);
        debug_assert_eq!(outcome.seed, seed, "scenario must report its own seed");
        report.checked += 1;
        if !outcome.passed() {
            report.failures.push(outcome);
            if config.fail_fast {
                break;
            }
        }
    }
    report
}

/// A minimized, self-contained description of one failing run.
///
/// Contains everything needed to reproduce and diagnose the failure: the
/// seed (the schedule *is* the seed), the fault plan that was derived from
/// it, the violations, the tail of the decision timeline from a re-run with
/// the observer attached, and the one replay command.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproBundle {
    /// The failing seed.
    pub seed: u64,
    /// Name of the scenario that failed.
    pub scenario: String,
    /// The fault plan of the failing run, as rendered JSON.
    pub plan: JsonValue,
    /// The invariant violations.
    pub violations: Vec<Violation>,
    /// Rendered tail (oldest first) of the decision-event timeline.
    pub timeline: Vec<String>,
    /// One-command replay hint.
    pub replay: String,
}

impl ReproBundle {
    /// Renders the bundle as one pretty-enough JSON object.
    pub fn to_json(&self) -> String {
        let violations = self
            .violations
            .iter()
            .map(|v| {
                JsonValue::obj(vec![
                    ("invariant", JsonValue::Str(v.invariant.clone())),
                    ("detail", JsonValue::Str(v.detail.clone())),
                ])
            })
            .collect();
        let timeline = self
            .timeline
            .iter()
            .map(|line| JsonValue::Str(line.clone()))
            .collect();
        JsonValue::obj(vec![
            ("seed", JsonValue::U64(self.seed)),
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("replay", JsonValue::Str(self.replay.clone())),
            ("violations", JsonValue::Arr(violations)),
            ("fault_plan", self.plan.clone()),
            ("timeline", JsonValue::Arr(timeline)),
        ])
        .to_json()
    }

    /// Writes the bundle to `dir/repro-seed-<seed>.json`, creating `dir` if
    /// needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("repro-seed-{}.json", self.seed));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Renders a human-readable failure report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario '{}' failed at seed {}\nreplay: {}\n",
            self.scenario, self.seed, self.replay
        ));
        for v in &self.violations {
            out.push_str(&format!("  violated {v}\n"));
        }
        if !self.timeline.is_empty() {
            out.push_str("decision timeline (tail):\n");
            for line in &self.timeline {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(seed: u64) -> SeedOutcome {
        SeedOutcome {
            seed,
            violations: vec![Violation {
                invariant: "agreement".into(),
                detail: format!("seed {seed} diverged"),
            }],
        }
    }

    #[test]
    fn explore_checks_the_whole_range_and_collects_failures() {
        let config = ExploreConfig {
            start_seed: 10,
            seeds: 5,
            fail_fast: false,
        };
        let mut seen = Vec::new();
        let report = explore(&config, |seed| {
            seen.push(seed);
            if seed % 2 == 0 {
                fail(seed)
            } else {
                SeedOutcome::pass(seed)
            }
        });
        assert_eq!(seen, vec![10, 11, 12, 13, 14]);
        assert_eq!(report.checked, 5);
        assert_eq!(report.first_failing_seed(), Some(10));
        assert_eq!(report.failures.len(), 3);
        assert!(!report.passed());
        assert!(report.summary().contains("first failing seed 10"));
    }

    #[test]
    fn fail_fast_stops_at_the_first_failure() {
        let config = ExploreConfig {
            start_seed: 0,
            seeds: 100,
            fail_fast: true,
        };
        let report = explore(&config, |seed| {
            if seed == 3 {
                fail(seed)
            } else {
                SeedOutcome::pass(seed)
            }
        });
        assert_eq!(report.checked, 4, "stopped right after seed 3");
        assert_eq!(report.first_failing_seed(), Some(3));
    }

    #[test]
    fn all_passing_sweep_summarizes_cleanly() {
        let report = explore(&ExploreConfig::default(), SeedOutcome::pass);
        assert!(report.passed());
        assert_eq!(report.checked, 100);
        assert!(report.summary().contains("all invariants held"));
    }

    #[test]
    fn bundle_round_trips_to_disk() {
        let bundle = ReproBundle {
            seed: 77,
            scenario: "chaos".into(),
            plan: JsonValue::obj(vec![("loss", JsonValue::F64(0.1))]),
            violations: vec![Violation {
                invariant: "tree".into(),
                detail: "cycle at sw3".into(),
            }],
            timeline: vec!["[1.000us] sw0 mc1 ProposalFlooded".into()],
            replay: "cargo run --bin explore -- --seed 77".into(),
        };
        let json = bundle.to_json();
        assert!(json.contains(r#""seed":77"#), "{json}");
        assert!(json.contains(r#""fault_plan":{"loss":0.1}"#), "{json}");
        assert!(json.contains("ProposalFlooded"), "{json}");
        let dir = std::env::temp_dir().join(format!("dgmc-explorer-{}", std::process::id()));
        let path = bundle.write(&dir).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), json);
        assert!(path.ends_with("repro-seed-77.json"));
        let rendered = bundle.render();
        assert!(rendered.contains("failed at seed 77"));
        assert!(rendered.contains("violated tree: cycle at sw3"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
