//! Dependency-free scoped-thread worker pool for seed sweeps.
//!
//! Seeds are pure, independent functions of their number, so a sweep shards
//! perfectly: `--jobs N` workers claim task indices from one atomic counter
//! and each runs its own `Rc`-based simulation stack (worker state is
//! created *inside* the worker thread and never crosses it, so nothing in
//! the single-threaded simulation layers needs to become `Send`). Results
//! land in per-index slots and the caller aggregates them **in task order**,
//! which is what makes `--jobs 1` and `--jobs 8` byte-identical.
//!
//! Cancellation is cooperative: when a task result matches the caller's
//! `cancel` predicate the pool stops handing out *new* indices, but every
//! in-flight task runs to completion and its result is kept (drain, don't
//! abort). Because indices are claimed in increasing order, the completed
//! slots always form a prefix of the task range.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: `min(available cores, 8)`, at least 1.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Runs `tasks` task indices across `jobs` workers and returns one slot per
/// index, in index order.
///
/// * `init(worker)` builds the per-worker state (a scratch `SpfCache`, a
///   metrics registry, ...) inside that worker's thread.
/// * `run(state, index)` executes one task.
/// * `cancel(result)` inspects each finished task; returning `true` raises
///   the shared cancellation flag (fail-fast). Workers observe the flag
///   before claiming their next index, so in-flight tasks still drain.
///
/// Slots that were never claimed (only possible after cancellation) are
/// `None`; claimed slots are always `Some` by the time this returns. With
/// `jobs <= 1` the tasks run serially on the calling thread with identical
/// semantics, so a parallel sweep degrades to the plain loop.
pub fn sweep<T, S>(
    jobs: usize,
    tasks: usize,
    init: impl Fn(usize) -> S + Sync,
    run: impl Fn(&mut S, usize) -> T + Sync,
    cancel: impl Fn(&T) -> bool + Sync,
) -> Vec<Option<T>>
where
    T: Send,
{
    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    if tasks == 0 {
        return slots;
    }
    if jobs <= 1 {
        let mut state = init(0);
        for (index, slot) in slots.iter_mut().enumerate() {
            let result = run(&mut state, index);
            let stop = cancel(&result);
            *slot = Some(result);
            if stop {
                break;
            }
        }
        return slots;
    }

    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let shared = Mutex::new(slots);
    let workers = jobs.min(tasks);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let cancelled = &cancelled;
            let shared = &shared;
            let init = &init;
            let run = &run;
            let cancel = &cancel;
            scope.spawn(move || {
                let mut state = init(worker);
                loop {
                    if cancelled.load(Ordering::SeqCst) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= tasks {
                        break;
                    }
                    let result = run(&mut state, index);
                    if cancel(&result) {
                        cancelled.store(true, Ordering::SeqCst);
                    }
                    let mut slots = shared.lock().unwrap_or_else(|e| e.into_inner());
                    slots[index] = Some(result);
                }
            });
        }
    });
    shared.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::rc::Rc;

    #[test]
    fn default_jobs_is_small_and_positive() {
        let jobs = default_jobs();
        assert!((1..=8).contains(&jobs));
    }

    #[test]
    fn all_tasks_complete_and_land_in_their_slot() {
        for jobs in [1, 2, 4, 9] {
            let out = sweep(jobs, 20, |_| (), |_, i| i * 3, |_| false);
            let values: Vec<usize> = out.into_iter().map(Option::unwrap).collect();
            assert_eq!(values, (0..20).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_state_is_created_per_worker_and_not_send() {
        // Rc is !Send: the pool must build and use it entirely in-thread.
        let out = sweep(4, 16, Rc::new, |state, i| (*state.as_ref(), i), |_| false);
        let workers: BTreeSet<usize> = out.iter().map(|s| s.unwrap().0).collect();
        assert!(!workers.is_empty());
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_keeps_a_prefix_and_drains_the_failing_task() {
        for jobs in [1, 4] {
            let out = sweep(jobs, 100, |_| (), |_, i| i, |&i| i == 5);
            // The failing index itself completed...
            assert_eq!(out[5], Some(5));
            // ...everything claimed before it completed too (claims are in
            // increasing order, so completed slots form a prefix)...
            for (i, slot) in out.iter().enumerate().take(5) {
                assert_eq!(*slot, Some(i));
            }
            // ...and the tail was cut off rather than fully swept.
            let completed = out.iter().flatten().count();
            assert!(completed < 100, "jobs={jobs} swept past the cancellation");
            let last_some = out.iter().rposition(Option::is_some).unwrap();
            assert_eq!(
                completed,
                last_some + 1,
                "jobs={jobs}: completed slots must form a prefix"
            );
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let out: Vec<Option<u32>> = sweep(4, 0, |_| (), |_, _| unreachable!(), |_| false);
        assert!(out.is_empty());
    }
}
