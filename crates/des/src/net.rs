//! Fault injection on the message-delivery path.
//!
//! A [`NetModel`] sits between [`crate::Ctx::send`] and the event queue:
//! every actor-to-actor message is routed through it and may be delayed,
//! duplicated, retransmitted or dropped. Timers
//! ([`crate::Ctx::schedule_self`]) and externally injected events bypass the
//! model — they are not network traffic.
//!
//! [`FaultyNet`] is the standard implementation: a declarative [`FaultPlan`]
//! (per-link loss, duplication, jitter, plus scheduled link flaps and node
//! outages carried for the scenario harness) driven by a seeded
//! [`rand::rngs::StdRng`], so a run's entire fault schedule is a pure
//! function of `(plan, seed)` and any failure replays from its seed.
//!
//! Two loss regimes are distinguished on purpose. D-GMC assumes reliable
//! flooding (the paper's LSAs ride OSPF-style flooding with link-level
//! acknowledgment), so [`LinkFaults::loss`] models loss *recovered* by
//! retransmission: the message arrives late — after
//! [`FaultPlan::retransmit_after`] per lost attempt — but always arrives.
//! [`LinkFaults::hard_loss`] genuinely discards messages; non-zero values
//! break the protocol's delivery assumption and are used by mutation checks
//! to prove the invariant suite can catch real divergence.
//!
//! [`FaultyNet`] preserves per-directed-link FIFO: copies between the same
//! ordered pair of actors never overtake each other (a head-of-line clamp on
//! the delivery instant). Same-origin LSAs therefore keep their order along
//! every path — reordering happens *across* links and paths, which is where
//! the protocol's concurrent-proposal machinery is exercised.

use crate::{ActorId, SimDuration, SimTime};
use dgmc_obs::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Provenance of one scheduled copy of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryKind {
    /// The message, delivered on the first attempt.
    Original,
    /// The message, delivered after this many lost attempts were recovered
    /// by link-level retransmission.
    Retransmit(u32),
    /// An injected extra copy.
    Duplicate,
}

/// One copy of a message the network will deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Total delay from the send instant.
    pub delay: SimDuration,
    /// How this copy came to be.
    pub kind: DeliveryKind,
}

/// A hook on every actor-to-actor message send.
///
/// Returning an empty vector drops the message; more than one entry
/// duplicates it. Implementations must be deterministic for reproducibility:
/// seed any randomness explicitly.
pub trait NetModel {
    /// Decides the fate of one message sent `from → to` at `now`, whose
    /// fault-free delivery delay would be `base`.
    fn route(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: SimTime,
        base: SimDuration,
    ) -> Vec<Delivery>;
}

/// Fault probabilities and delay noise applied to one (directed) link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Per-attempt loss probability, recovered by link-level retransmission:
    /// the message arrives [`FaultPlan::retransmit_after`] later per lost
    /// attempt, but always arrives.
    pub loss: f64,
    /// Probability the message is genuinely dropped, with no recovery.
    /// D-GMC assumes reliable flooding, so non-zero values are expected to
    /// break invariants — used by mutation checks.
    pub hard_loss: f64,
    /// Probability one extra copy is delivered.
    pub duplicate: f64,
    /// Maximum uniform extra delay added to every copy.
    pub jitter: SimDuration,
}

impl LinkFaults {
    /// A fault-free link (zero probabilities, zero jitter).
    pub fn none() -> LinkFaults {
        LinkFaults {
            loss: 0.0,
            hard_loss: 0.0,
            duplicate: 0.0,
            jitter: SimDuration::ZERO,
        }
    }

    fn assert_valid(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("hard_loss", self.hard_loss),
            ("duplicate", self.duplicate),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {name}={p} out of [0, 1]"
            );
        }
    }

    fn to_json(self) -> JsonValue {
        JsonValue::obj(vec![
            ("loss", JsonValue::F64(self.loss)),
            ("hard_loss", JsonValue::F64(self.hard_loss)),
            ("duplicate", JsonValue::F64(self.duplicate)),
            ("jitter_ns", JsonValue::U64(self.jitter.as_nanos())),
        ])
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::none()
    }
}

/// A scheduled link flap, in time relative to the scenario's fault phase.
///
/// The network model itself does not apply flaps — they are ground-truth
/// topology events injected by the scenario harness (via the protocol's
/// link-event path). They live in the plan so a repro bundle fully describes
/// the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// One endpoint of the flapped link.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// When the link goes down.
    pub down_at: SimDuration,
    /// When it comes back up (must be after `down_at`).
    pub up_at: SimDuration,
}

/// A scheduled node crash/restart window (same conventions as [`LinkFlap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// The crashing node.
    pub node: u32,
    /// When the node crashes.
    pub down_at: SimDuration,
    /// When it restarts (must be after `down_at`).
    pub up_at: SimDuration,
}

/// A declarative description of everything injected into one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Faults applied to every directed link without an override.
    pub default: LinkFaults,
    /// Per-link overrides, keyed by the unordered endpoint pair
    /// `(min(a, b), max(a, b))` — both directions of the link get them.
    pub overrides: BTreeMap<(u32, u32), LinkFaults>,
    /// Extra delay of one link-level retransmission round.
    pub retransmit_after: SimDuration,
    /// Cap on recovered retransmission rounds per message.
    pub max_retries: u32,
    /// Link flaps the scenario harness will inject.
    pub flaps: Vec<LinkFlap>,
    /// Node crash/restart windows the scenario harness will inject.
    pub outages: Vec<NodeOutage>,
}

impl FaultPlan {
    /// A plan that injects nothing at all.
    pub fn none() -> FaultPlan {
        FaultPlan {
            default: LinkFaults::none(),
            overrides: BTreeMap::new(),
            retransmit_after: SimDuration::micros(20),
            max_retries: 5,
            flaps: Vec::new(),
            outages: Vec::new(),
        }
    }

    /// A uniform plan: the same faults on every link, no flaps or outages.
    pub fn uniform(faults: LinkFaults) -> FaultPlan {
        FaultPlan {
            default: faults,
            ..FaultPlan::none()
        }
    }

    /// The faults applied between `from` and `to`.
    pub fn faults_between(&self, from: ActorId, to: ActorId) -> LinkFaults {
        let key = (from.0.min(to.0), from.0.max(to.0));
        self.overrides.get(&key).copied().unwrap_or(self.default)
    }

    /// Renders the plan as a JSON value (for repro bundles).
    pub fn to_json(&self) -> JsonValue {
        let overrides = self
            .overrides
            .iter()
            .map(|(&(a, b), f)| {
                JsonValue::obj(vec![
                    ("a", JsonValue::U64(a as u64)),
                    ("b", JsonValue::U64(b as u64)),
                    ("faults", f.to_json()),
                ])
            })
            .collect();
        let flaps = self
            .flaps
            .iter()
            .map(|fl| {
                JsonValue::obj(vec![
                    ("a", JsonValue::U64(fl.a as u64)),
                    ("b", JsonValue::U64(fl.b as u64)),
                    ("down_at_ns", JsonValue::U64(fl.down_at.as_nanos())),
                    ("up_at_ns", JsonValue::U64(fl.up_at.as_nanos())),
                ])
            })
            .collect();
        let outages = self
            .outages
            .iter()
            .map(|o| {
                JsonValue::obj(vec![
                    ("node", JsonValue::U64(o.node as u64)),
                    ("down_at_ns", JsonValue::U64(o.down_at.as_nanos())),
                    ("up_at_ns", JsonValue::U64(o.up_at.as_nanos())),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("default", self.default.to_json()),
            ("overrides", JsonValue::Arr(overrides)),
            (
                "retransmit_after_ns",
                JsonValue::U64(self.retransmit_after.as_nanos()),
            ),
            ("max_retries", JsonValue::U64(self.max_retries as u64)),
            ("flaps", JsonValue::Arr(flaps)),
            ("outages", JsonValue::Arr(outages)),
        ])
    }

    fn assert_valid(&self) {
        self.default.assert_valid();
        for f in self.overrides.values() {
            f.assert_valid();
        }
        for fl in &self.flaps {
            assert!(fl.down_at < fl.up_at, "flap must come back up after down");
        }
        for o in &self.outages {
            assert!(o.down_at < o.up_at, "outage must end after it starts");
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The standard [`NetModel`]: a [`FaultPlan`] driven by a seeded RNG.
///
/// Per-directed-link FIFO is enforced with a head-of-line clamp: a copy is
/// never scheduled earlier than the previously scheduled copy on the same
/// `(from, to)` pair, and the queue's FIFO tie-break preserves order among
/// equal instants.
#[derive(Debug)]
pub struct FaultyNet {
    plan: FaultPlan,
    rng: StdRng,
    /// Per directed pair: the latest delivery instant scheduled so far.
    next_free: BTreeMap<(u32, u32), SimTime>,
}

impl FaultyNet {
    /// Creates the model; the fault schedule is a pure function of
    /// `(plan, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if any plan probability is outside `[0, 1]` or any flap/outage
    /// window is empty.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultyNet {
        plan.assert_valid();
        FaultyNet {
            plan,
            rng: StdRng::seed_from_u64(seed),
            next_free: BTreeMap::new(),
        }
    }

    /// The plan this model executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn jitter(&mut self, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::nanos(self.rng.gen_range(0..=max.as_nanos()))
        }
    }

    /// Clamps `at` to the pair's FIFO horizon and advances the horizon.
    fn clamp(&mut self, from: ActorId, to: ActorId, at: SimTime) -> SimTime {
        let slot = self.next_free.entry((from.0, to.0)).or_insert(at);
        let clamped = at.max(*slot);
        *slot = clamped;
        clamped
    }
}

impl NetModel for FaultyNet {
    fn route(
        &mut self,
        from: ActorId,
        to: ActorId,
        now: SimTime,
        base: SimDuration,
    ) -> Vec<Delivery> {
        let faults = self.plan.faults_between(from, to);
        let mut out = Vec::with_capacity(1);
        if faults.hard_loss > 0.0 && self.rng.gen_bool(faults.hard_loss) {
            return out;
        }
        let mut retries = 0u32;
        while faults.loss > 0.0 && retries < self.plan.max_retries && self.rng.gen_bool(faults.loss)
        {
            retries += 1;
        }
        let delay = base + self.jitter(faults.jitter) + self.plan.retransmit_after * retries as u64;
        let at = self.clamp(from, to, now + delay);
        out.push(Delivery {
            delay: at - now,
            kind: if retries > 0 {
                DeliveryKind::Retransmit(retries)
            } else {
                DeliveryKind::Original
            },
        });
        if faults.duplicate > 0.0 && self.rng.gen_bool(faults.duplicate) {
            let extra = base + self.jitter(faults.jitter);
            let dup_at = self.clamp(from, to, now + extra);
            out.push(Delivery {
                delay: dup_at - now,
                kind: DeliveryKind::Duplicate,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: SimDuration = SimDuration::ZERO;

    fn route_once(net: &mut FaultyNet, now_us: u64) -> Vec<Delivery> {
        net.route(
            ActorId(0),
            ActorId(1),
            SimTime::ZERO + SimDuration::micros(now_us),
            SimDuration::micros(10),
        )
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let mut net = FaultyNet::new(FaultPlan::none(), 1);
        let d = route_once(&mut net, 0);
        assert_eq!(
            d,
            vec![Delivery {
                delay: SimDuration::micros(10),
                kind: DeliveryKind::Original,
            }]
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::uniform(LinkFaults {
            loss: 0.3,
            hard_loss: 0.1,
            duplicate: 0.3,
            jitter: SimDuration::micros(50),
        });
        let mut a = FaultyNet::new(plan.clone(), 42);
        let mut b = FaultyNet::new(plan, 42);
        for i in 0..200 {
            assert_eq!(route_once(&mut a, i), route_once(&mut b, i));
        }
    }

    #[test]
    fn hard_loss_one_drops_everything() {
        let mut net = FaultyNet::new(
            FaultPlan::uniform(LinkFaults {
                hard_loss: 1.0,
                ..LinkFaults::none()
            }),
            7,
        );
        for i in 0..20 {
            assert!(route_once(&mut net, i).is_empty());
        }
    }

    #[test]
    fn duplicate_one_always_produces_two_copies() {
        let mut net = FaultyNet::new(
            FaultPlan::uniform(LinkFaults {
                duplicate: 1.0,
                ..LinkFaults::none()
            }),
            7,
        );
        let d = route_once(&mut net, 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].kind, DeliveryKind::Original);
        assert_eq!(d[1].kind, DeliveryKind::Duplicate);
    }

    #[test]
    fn recovered_loss_adds_retransmission_rounds() {
        let mut plan = FaultPlan::uniform(LinkFaults {
            loss: 1.0,
            ..LinkFaults::none()
        });
        plan.retransmit_after = SimDuration::micros(100);
        plan.max_retries = 3;
        let mut net = FaultyNet::new(plan, 7);
        let d = route_once(&mut net, 0);
        // loss = 1.0 exhausts every retry, then delivers anyway.
        assert_eq!(d.len(), 1, "recovered loss still delivers");
        assert_eq!(d[0].kind, DeliveryKind::Retransmit(3));
        assert_eq!(d[0].delay, SimDuration::micros(10 + 300));
    }

    #[test]
    fn per_directed_link_fifo_is_preserved_under_jitter() {
        let plan = FaultPlan::uniform(LinkFaults {
            loss: 0.4,
            duplicate: 0.3,
            jitter: SimDuration::micros(500),
            ..LinkFaults::none()
        });
        let mut net = FaultyNet::new(plan, 99);
        let mut last = SimTime::ZERO;
        for i in 0..300 {
            let now = SimTime::ZERO + SimDuration::micros(i * 3);
            for d in net.route(ActorId(4), ActorId(9), now, SimDuration::micros(10)) {
                let at = now + d.delay;
                assert!(at >= last, "copy scheduled before its predecessor");
                last = at;
            }
        }
    }

    #[test]
    fn independent_pairs_do_not_clamp_each_other() {
        let plan = FaultPlan::uniform(LinkFaults {
            jitter: SimDuration::micros(500),
            ..LinkFaults::none()
        });
        let mut net = FaultyNet::new(plan, 3);
        // Build up a large horizon on (0 -> 1)...
        for i in 0..50 {
            let now = SimTime::ZERO + SimDuration::nanos(i);
            net.route(ActorId(0), ActorId(1), now, BASE);
        }
        // ...the reverse direction is unaffected by it.
        let d = net.route(ActorId(1), ActorId(0), SimTime::ZERO, BASE);
        assert!(d[0].delay <= SimDuration::micros(500));
    }

    #[test]
    fn overrides_select_by_unordered_pair() {
        let mut plan = FaultPlan::none();
        plan.overrides.insert(
            (1, 2),
            LinkFaults {
                hard_loss: 1.0,
                ..LinkFaults::none()
            },
        );
        let mut net = FaultyNet::new(plan, 5);
        // Both directions of the overridden link drop.
        assert!(net
            .route(ActorId(1), ActorId(2), SimTime::ZERO, BASE)
            .is_empty());
        assert!(net
            .route(ActorId(2), ActorId(1), SimTime::ZERO, BASE)
            .is_empty());
        // Other links use the (fault-free) default.
        assert_eq!(
            net.route(ActorId(0), ActorId(1), SimTime::ZERO, BASE).len(),
            1
        );
    }

    #[test]
    fn plan_renders_as_json() {
        let mut plan = FaultPlan::uniform(LinkFaults {
            loss: 0.25,
            ..LinkFaults::none()
        });
        plan.flaps.push(LinkFlap {
            a: 0,
            b: 3,
            down_at: SimDuration::micros(5),
            up_at: SimDuration::micros(9),
        });
        plan.outages.push(NodeOutage {
            node: 2,
            down_at: SimDuration::micros(1),
            up_at: SimDuration::micros(2),
        });
        let json = plan.to_json().to_json();
        assert!(json.contains(r#""loss":0.25"#), "{json}");
        assert!(json.contains(r#""flaps":[{"a":0,"b":3"#), "{json}");
        assert!(json.contains(r#""outages":[{"node":2"#), "{json}");
        assert!(json.contains(r#""max_retries":5"#), "{json}");
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn invalid_probability_is_rejected() {
        let _ = FaultyNet::new(
            FaultPlan::uniform(LinkFaults {
                loss: 1.5,
                ..LinkFaults::none()
            }),
            0,
        );
    }
}
