use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanosecond ticks since the simulation epoch.
///
/// # Examples
///
/// ```
/// use dgmc_des::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::micros(10);
/// assert_eq!(t - SimTime::ZERO, SimDuration::micros(10));
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw nanosecond tick count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Constructs an instant from raw nanosecond ticks.
    pub fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// The instant as fractional microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in nanosecond ticks.
///
/// # Examples
///
/// ```
/// use dgmc_des::SimDuration;
/// assert_eq!(SimDuration::micros(2) * 3, SimDuration::micros(6));
/// assert_eq!(SimDuration::millis(1).as_nanos(), 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span from nanoseconds.
    pub fn nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub fn micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub fn millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from seconds.
    pub fn secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanosecond tick count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if the span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "cannot divide by a zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::nanos(1).as_nanos(), 1);
        assert_eq!(SimDuration::micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::micros(7);
        assert_eq!(t1 - t0, SimDuration::micros(7));
        let mut t = t1;
        t += SimDuration::micros(3);
        assert_eq!(t.as_nanos(), 10_000);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::micros(4) + SimDuration::micros(6);
        assert_eq!(d, SimDuration::micros(10));
        assert_eq!(d - SimDuration::micros(3), SimDuration::micros(7));
        assert_eq!(d * 2, SimDuration::micros(20));
        assert_eq!(d / 5, SimDuration::micros(2));
        assert!((d.ratio(SimDuration::micros(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::ZERO - SimDuration::micros(1),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(SimDuration::micros(1500).to_string(), "1500.000us");
        assert_eq!(
            (SimTime::ZERO + SimDuration::nanos(500)).to_string(),
            "0.500us"
        );
    }

    #[test]
    fn is_zero_and_ordering() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::nanos(1).is_zero());
        assert!(SimDuration::micros(1) < SimDuration::millis(1));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn ratio_by_zero_panics() {
        let _ = SimDuration::micros(1).ratio(SimDuration::ZERO);
    }
}
