//! Bounded event tracing for simulation debugging.
//!
//! When enabled on a [`crate::Simulation`], every delivered event is
//! recorded (time, sender, receiver and a message label produced by a
//! user-supplied labeler) into a ring buffer, so a failing run can be
//! inspected without re-instrumenting actors.

use crate::{ActorId, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// One recorded delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery instant.
    pub at: SimTime,
    /// Recipient actor.
    pub to: ActorId,
    /// Sending actor (`None` for injections and timers).
    pub from: Option<ActorId>,
    /// Label produced by the labeler at record time.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(f, "[{}] {} -> {}: {}", self.at, from, self.to, self.label),
            None => write!(f, "[{}] (env) -> {}: {}", self.at, self.to, self.label),
        }
    }
}

/// A capacity-bounded ring buffer of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use dgmc_des::trace::TraceBuffer;
/// let mut t = TraceBuffer::new(2);
/// t.push_raw("a".into());
/// t.push_raw("b".into());
/// t.push_raw("c".into());
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding the `capacity` most recent events.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Testing helper: records a label-only event at time zero.
    pub fn push_raw(&mut self, label: String) {
        self.push(TraceEvent {
            at: SimTime::ZERO,
            to: ActorId(0),
            from: None,
            label,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Retained events whose label contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label.contains(needle))
    }

    /// Renders the retained tail as text (newest last).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(42_000),
            to: ActorId(3),
            from: Some(ActorId(1)),
            label: label.to_owned(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(ev(&format!("m{i}")));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let labels: Vec<&str> = t.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn matching_filters_by_label() {
        let mut t = TraceBuffer::new(10);
        t.push(ev("flood mc1"));
        t.push(ev("data mc2"));
        t.push(ev("flood mc2"));
        assert_eq!(t.matching("flood").count(), 2);
        assert_eq!(t.matching("mc2").count(), 2);
        assert_eq!(t.matching("zzz").count(), 0);
    }

    #[test]
    fn display_and_dump() {
        let mut t = TraceBuffer::new(2);
        t.push(ev("hello"));
        let dump = t.dump();
        assert!(dump.contains("a1 -> a3: hello"));
        assert!(dump.contains("42.000us"));
        let timer = TraceEvent {
            from: None,
            ..ev("tick")
        };
        assert!(timer.to_string().contains("(env) -> a3: tick"));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut t = TraceBuffer::new(0);
        t.push(ev("x"));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
