//! Bounded event tracing and delivery accounting for simulation debugging.
//!
//! When enabled on a [`crate::Simulation`], every delivered event is
//! recorded (time, sender, receiver and a message label produced by a
//! user-supplied labeler) into a ring buffer, so a failing run can be
//! inspected without re-instrumenting actors.
//!
//! [`NetStats`] is the companion ledger for the fault-injection path: when a
//! [`crate::net::NetModel`] is installed, the simulator counts every send,
//! drop, duplicate and retransmission round, and the books must
//! [reconcile][NetStats::reconciles] — copies scheduled equals sends minus
//! drops plus duplicates.

use crate::{ActorId, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// Message accounting across the network model.
///
/// All zeros until a [`crate::net::NetModel`] is installed; see
/// [`crate::Simulation::net_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Actor-to-actor sends routed through the model.
    pub sent: u64,
    /// Message copies actually scheduled for delivery.
    pub delivered: u64,
    /// Messages hard-dropped (never delivered).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Recovered retransmission rounds (late deliveries, not extra copies).
    pub retransmits: u64,
}

impl NetStats {
    /// Checks the conservation law of the delivery path:
    /// `sent + duplicated == delivered + dropped`.
    pub fn reconciles(&self) -> bool {
        self.sent + self.duplicated == self.delivered + self.dropped
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} duplicated={} retransmits={}",
            self.sent, self.delivered, self.dropped, self.duplicated, self.retransmits
        )
    }
}

/// One recorded delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery instant.
    pub at: SimTime,
    /// Recipient actor.
    pub to: ActorId,
    /// Sending actor (`None` for injections and timers).
    pub from: Option<ActorId>,
    /// Label produced by the labeler at record time.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(f, "[{}] {} -> {}: {}", self.at, from, self.to, self.label),
            None => write!(f, "[{}] (env) -> {}: {}", self.at, self.to, self.label),
        }
    }
}

/// A capacity-bounded ring buffer of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use dgmc_des::trace::TraceBuffer;
/// let mut t = TraceBuffer::new(2);
/// t.push_raw("a".into());
/// t.push_raw("b".into());
/// t.push_raw("c".into());
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding the `capacity` most recent events.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Testing helper: records a label-only event at time zero.
    pub fn push_raw(&mut self, label: String) {
        self.push(TraceEvent {
            at: SimTime::ZERO,
            to: ActorId(0),
            from: None,
            label,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Retained events whose label contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label.contains(needle))
    }

    /// Renders the retained tail as text (newest last).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(42_000),
            to: ActorId(3),
            from: Some(ActorId(1)),
            label: label.to_owned(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(ev(&format!("m{i}")));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let labels: Vec<&str> = t.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn matching_filters_by_label() {
        let mut t = TraceBuffer::new(10);
        t.push(ev("flood mc1"));
        t.push(ev("data mc2"));
        t.push(ev("flood mc2"));
        assert_eq!(t.matching("flood").count(), 2);
        assert_eq!(t.matching("mc2").count(), 2);
        assert_eq!(t.matching("zzz").count(), 0);
    }

    #[test]
    fn display_and_dump() {
        let mut t = TraceBuffer::new(2);
        t.push(ev("hello"));
        let dump = t.dump();
        assert!(dump.contains("a1 -> a3: hello"));
        assert!(dump.contains("42.000us"));
        let timer = TraceEvent {
            from: None,
            ..ev("tick")
        };
        assert!(timer.to_string().contains("(env) -> a3: tick"));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut t = TraceBuffer::new(0);
        t.push(ev("x"));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    mod net_accounting {
        //! Drop accounting when a network model drops or duplicates: the
        //! [`NetStats`] ledger must reconcile with what the trace buffer
        //! (and the receiving actor) actually saw delivered.

        use crate::net::{Delivery, DeliveryKind, FaultPlan, FaultyNet, LinkFaults, NetModel};
        use crate::{Actor, ActorId, Ctx, Envelope, SimDuration, SimTime, Simulation};

        /// Drops every 3rd message, duplicates every 4th, else passes through.
        struct Scripted {
            calls: u64,
        }

        impl NetModel for Scripted {
            fn route(
                &mut self,
                _from: ActorId,
                _to: ActorId,
                _now: SimTime,
                base: SimDuration,
            ) -> Vec<Delivery> {
                self.calls += 1;
                if self.calls.is_multiple_of(3) {
                    return Vec::new();
                }
                let mut out = vec![Delivery {
                    delay: base,
                    kind: DeliveryKind::Original,
                }];
                if self.calls.is_multiple_of(4) {
                    out.push(Delivery {
                        delay: base + SimDuration::micros(1),
                        kind: DeliveryKind::Duplicate,
                    });
                }
                out
            }
        }

        /// Sends `remaining` pings to a peer; the peer counts arrivals.
        struct Pinger {
            peer: ActorId,
            remaining: u64,
        }

        impl Actor<u64> for Pinger {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, _env: Envelope<u64>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(self.peer, SimDuration::micros(10), self.remaining);
                    ctx.schedule_self(SimDuration::micros(20), 0);
                }
            }
        }

        struct Sink;
        impl Actor<u64> for Sink {
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, _env: Envelope<u64>) {
                ctx.counter("arrived").incr();
            }
        }

        fn run_with(model: impl NetModel + 'static, pings: u64) -> Simulation<u64> {
            let mut sim = Simulation::new();
            let sink = sim.add_actor(Box::new(Sink));
            let pinger = sim.add_actor(Box::new(Pinger {
                peer: sink,
                remaining: pings,
            }));
            sim.enable_trace(1024, |m| format!("m{m}"));
            sim.set_net_model(model);
            sim.inject(pinger, SimDuration::ZERO, 0);
            sim.run_to_quiescence();
            sim
        }

        #[test]
        fn dropped_and_duplicated_reconcile_with_delivered() {
            let sim = run_with(Scripted { calls: 0 }, 24);
            let stats = *sim.net_stats();
            assert_eq!(stats.sent, 24);
            assert_eq!(stats.dropped, 8, "every 3rd of 24 sends dropped");
            assert_eq!(stats.duplicated, 4, "every 4th not divisible by 3");
            assert!(stats.reconciles(), "{stats}");
            // The receiving actor saw exactly the scheduled copies...
            assert_eq!(sim.counter_value("arrived"), stats.delivered);
            // ...and so did the trace buffer (actor-to-actor entries only).
            let traced = sim
                .trace()
                .unwrap()
                .iter()
                .filter(|e| e.from.is_some())
                .count() as u64;
            assert_eq!(traced, stats.delivered);
            // The ledger is mirrored into the metrics registry.
            assert_eq!(sim.counter_value(crate::net_counters::DROPPED), 8);
            assert_eq!(sim.counter_value(crate::net_counters::DUPLICATED), 4);
        }

        #[test]
        fn seeded_faulty_net_reconciles_too() {
            let plan = FaultPlan::uniform(LinkFaults {
                loss: 0.3,
                hard_loss: 0.2,
                duplicate: 0.25,
                jitter: SimDuration::micros(40),
            });
            let sim = run_with(FaultyNet::new(plan, 1234), 200);
            let stats = *sim.net_stats();
            assert_eq!(stats.sent, 200);
            assert!(stats.dropped > 0, "hard loss must have fired: {stats}");
            assert!(stats.duplicated > 0, "{stats}");
            assert!(stats.retransmits > 0, "{stats}");
            assert!(stats.reconciles(), "{stats}");
            assert_eq!(sim.counter_value("arrived"), stats.delivered);
        }

        #[test]
        fn timers_and_injections_bypass_the_model() {
            // Pinger's schedule_self timers drive the run; with a
            // drop-everything model no ping arrives yet all timers do.
            struct DropAll;
            impl NetModel for DropAll {
                fn route(
                    &mut self,
                    _f: ActorId,
                    _t: ActorId,
                    _n: SimTime,
                    _b: SimDuration,
                ) -> Vec<Delivery> {
                    Vec::new()
                }
            }
            let sim = run_with(DropAll, 10);
            let stats = *sim.net_stats();
            assert_eq!(stats.sent, 10);
            assert_eq!(stats.dropped, 10);
            assert_eq!(stats.delivered, 0);
            assert!(stats.reconciles());
            assert_eq!(sim.counter_value("arrived"), 0);
        }
    }
}
