//! Counters and statistical tallies.
//!
//! The paper reports each metric as a mean over 20 random graphs with a 95%
//! confidence interval; [`Tally`] reproduces that reporting (Student-t based
//! half-width), and [`CounterHandle`] backs the named event counters the
//! protocol actors bump during simulation.

/// Mutable handle to a named simulation counter.
///
/// Obtained through [`crate::Ctx::counter`]; the handle borrows one interned
/// slot of the simulation's [`dgmc_obs::MetricsRegistry`] for the duration
/// of one update, so bumping an existing counter neither hashes twice nor
/// allocates.
#[derive(Debug)]
pub struct CounterHandle<'a> {
    slot: &'a mut u64,
}

impl<'a> CounterHandle<'a> {
    pub(crate) fn from_slot(slot: &'a mut u64) -> Self {
        CounterHandle { slot }
    }

    /// Adds one to the counter.
    pub fn incr(self) {
        *self.slot += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(self, n: u64) {
        *self.slot += n;
    }
}

/// Streaming mean/variance tally (Welford) with a 95% confidence interval.
///
/// # Examples
///
/// ```
/// use dgmc_des::stats::Tally;
/// let mut t = Tally::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     t.record(x);
/// }
/// assert!((t.mean() - 5.0).abs() < 1e-12);
/// assert!(t.ci95_half_width() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval around the mean,
    /// `t_{0.975, n-1} * std_err`.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_value_975((self.n - 1) as usize) * self.std_err()
    }

    /// `(mean - hw, mean + hw)` for the 95% confidence interval.
    pub fn ci95(&self) -> (f64, f64) {
        let hw = self.ci95_half_width();
        (self.mean() - hw, self.mean() + hw)
    }

    /// Merges another tally into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

impl Extend<f64> for Tally {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Tally {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut t = Tally::new();
        t.extend(iter);
        t
    }
}

/// A fixed-bucket histogram over `[0, +inf)` with percentile queries.
///
/// Buckets grow geometrically (factor 2 from `first_bucket`), so the
/// histogram covers many orders of magnitude with bounded memory — suited
/// to convergence-time distributions whose tails matter.
///
/// # Examples
///
/// ```
/// use dgmc_des::stats::Histogram;
/// let mut h = Histogram::new(1.0, 16);
/// for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
///     h.record(x);
/// }
/// assert_eq!(h.len(), 5);
/// assert!(h.percentile(0.5) <= h.percentile(0.95));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    first_bucket: f64,
    /// counts[i] covers [first*2^(i-1), first*2^i); counts[0] covers
    /// [0, first).
    counts: Vec<u64>,
    total: u64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram whose first bucket ends at `first_bucket` and
    /// which has `buckets` geometric buckets (values beyond the last bucket
    /// clamp into it).
    ///
    /// # Panics
    ///
    /// Panics if `first_bucket <= 0` or `buckets == 0`.
    pub fn new(first_bucket: f64, buckets: usize) -> Histogram {
        assert!(first_bucket > 0.0, "first bucket must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            first_bucket,
            counts: vec![0; buckets],
            total: 0,
            max_seen: 0.0,
        }
    }

    /// Records one non-negative observation (negatives clamp to zero).
    pub fn record(&mut self, x: f64) {
        let x = x.max(0.0);
        let idx = self.bucket_index(x);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(x);
    }

    /// Index of the bucket covering `x`, comparing against the exact bucket
    /// boundaries `first * 2^i`.
    ///
    /// Doubling an f64 is exact, so the comparisons are too. The previous
    /// `(x / first).log2().floor()` formulation rounded the quotient at
    /// boundary values when `first` is not a power of two (e.g.
    /// `0.6 / 0.3 == 1.9999999999999998`), filing boundary samples one
    /// bucket low.
    fn bucket_index(&self, x: f64) -> usize {
        let last = self.counts.len() - 1;
        if x < self.first_bucket || last == 0 {
            return 0;
        }
        let mut upper = self.first_bucket * 2.0;
        let mut idx = 1;
        while x >= upper && idx < last {
            upper *= 2.0;
            idx += 1;
        }
        idx
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 < q <= 1`).
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let want = (q * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= want {
                return if i == 0 {
                    self.first_bucket
                } else {
                    self.first_bucket * 2f64.powi(i as i32)
                };
            }
        }
        self.max_seen
    }

    /// Iterates over `(bucket_upper_bound, count)` for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                let bound = if i == 0 {
                    self.first_bucket
                } else {
                    self.first_bucket * 2f64.powi(i as i32)
                };
                Some((bound, c))
            }
        })
    }
}

/// Two-sided 97.5th percentile of Student's t distribution for `df` degrees
/// of freedom (so that ±t covers 95%).
fn t_value_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let t: Tally = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((t.mean() - mean).abs() < 1e-12);
        assert!((t.variance() - var).abs() < 1e-12);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_and_singleton_tallies_are_safe() {
        let t = Tally::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.ci95_half_width(), 0.0);
        let mut s = Tally::new();
        s.record(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let mut small: Tally = (0..5).map(|i| (i % 2) as f64).collect();
        let mut large: Tally = (0..500).map(|i| (i % 2) as f64).collect();
        assert!(small.ci95_half_width() > large.ci95_half_width());
        // keep mutability used
        small.record(0.5);
        large.record(0.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..20).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Tally = xs.iter().copied().collect();
        let mut a: Tally = xs[..7].iter().copied().collect();
        let b: Tally = xs[7..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.len(), seq.len());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut t: Tally = [1.0, 2.0].into_iter().collect();
        let before = t.clone();
        t.merge(&Tally::new());
        assert_eq!(t, before);
        let mut e = Tally::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert!(t_value_975(1) > t_value_975(5));
        assert!(t_value_975(5) > t_value_975(30));
        assert!(t_value_975(30) > t_value_975(1000));
        assert!((t_value_975(1000) - 1.96).abs() < 1e-9);
        assert!(t_value_975(0).is_infinite());
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new(1.0, 8);
        for x in [0.1, 0.2, 0.9, 1.5, 3.0, 7.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.len(), 7);
        assert_eq!(h.max(), 100.0);
        // p50 falls in the [1,2) bucket -> bound 2.0 (4th of 7 values).
        assert_eq!(h.percentile(0.5), 2.0);
        assert!(h.percentile(1.0) >= h.percentile(0.5));
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 3), "three sub-1 values");
    }

    #[test]
    fn histogram_boundary_values_land_in_the_upper_bucket() {
        // Bucket i covers [first*2^(i-1), first*2^i): a sample exactly on a
        // boundary belongs to the bucket above it. With first = 0.3 the old
        // log2-based indexing returned 1.9999999999999998 for 0.6/0.3 and
        // filed the sample one bucket low.
        for first in [0.3, 0.7, 1.0, 2.5] {
            let buckets = 10;
            let mut h = Histogram::new(first, buckets);
            let mut boundary = first;
            for i in 1..buckets {
                h.record(boundary); // == first * 2^(i-1), exact
                let counts: Vec<_> = h.buckets().collect();
                assert_eq!(
                    counts.last().unwrap(),
                    &(first * 2f64.powi(i as i32), 1),
                    "boundary {boundary} (first {first}) misbucketed"
                );
                boundary *= 2.0;
            }
            // Just below each boundary stays in the lower bucket.
            let mut h = Histogram::new(first, buckets);
            let below = first * (1.0 - f64::EPSILON);
            h.record(below);
            assert_eq!(h.buckets().next().unwrap(), (first, 1));
        }
    }

    #[test]
    fn histogram_regression_first_point_three() {
        let mut h = Histogram::new(0.3, 8);
        h.record(0.6);
        // 0.6 ∈ [0.6, 1.2) -> the bucket with upper bound 1.2.
        assert_eq!(h.buckets().next().unwrap(), (0.3 * 4.0, 1));
    }

    #[test]
    fn histogram_single_bucket_takes_everything() {
        let mut h = Histogram::new(1.0, 1);
        h.record(0.5);
        h.record(123.0);
        assert_eq!(h.len(), 2);
        assert_eq!(h.buckets().next().unwrap(), (1.0, 2));
    }

    #[test]
    fn histogram_clamps_extremes() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-5.0); // clamps to 0
        h.record(1e12); // clamps to last bucket
        assert_eq!(h.len(), 2);
        assert_eq!(h.percentile(0.25), 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(2.0, 4);
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        Histogram::new(1.0, 2).percentile(0.0);
    }

    #[test]
    fn ci95_contains_mean() {
        let t: Tally = (0..19).map(|i| i as f64).collect();
        let (lo, hi) = t.ci95();
        assert!(lo < t.mean() && t.mean() < hi);
        // 20 graphs per size in the paper -> df=19 uses the 2.093 entry.
        assert!((t.ci95_half_width() / t.std_err() - 2.101).abs() < 1e-9);
    }
}
