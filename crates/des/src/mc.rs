//! Bounded model checking: systematic exploration of event interleavings.
//!
//! Where the seeded explorer ([`crate::explorer`]) *samples* schedules,
//! this module *enumerates* them: a depth-first search over scheduler
//! choice points covers every delivery/completion/script interleaving of a
//! bounded scenario (Helmy et al., *Systematic Testing of Multicast
//! Routing Protocols*, cs/0007005). Two reductions keep the tree tractable
//! without losing soundness:
//!
//! * **Sleep sets** (partial-order reduction): after exploring action `a`
//!   from a state, sibling subtrees need not re-explore interleavings that
//!   merely commute `a` past independent actions. An action enters a
//!   child's sleep set iff the model says it commutes with the action taken
//!   ([`Model::commutes`]); executing a dependent action wakes it.
//! * **State caching**: a canonical [`Model::state_hash`] detects
//!   convergent interleavings. Combining caching with sleep sets is only
//!   sound when the cached visit explored at least as much as the current
//!   one would, so each cache entry remembers the sleep set it was explored
//!   under and a revisit is pruned only if some remembered sleep set is a
//!   *subset* of the current one (Godefroid's criterion).
//!
//! Actions are identified across paths and worker threads by a
//! content-based [`Model::action_key`]; traces recorded as key sequences
//! replay bit-for-bit via [`replay`], shrink via [`minimize`] (prefix
//! bisection + delta-debugging chunk removal), and shard across workers via
//! [`explore_sharded`] (DFS-subtree prefixes over [`crate::par::sweep`],
//! byte-identical for every `jobs` value).

use crate::explorer::Violation;
use crate::par;
use dgmc_obs::{JsonValue, MetricsRegistry};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::Hasher;

/// Metric names published by [`McStats::publish`].
pub mod metric_names {
    /// Search states expanded (after pruning).
    pub const STATES: &str = "mc.states";
    /// Revisits pruned by the state cache.
    pub const PRUNED: &str = "mc.pruned";
    /// Deepest explored trace.
    pub const MAX_DEPTH: &str = "mc.max_depth";
    /// Transitions applied.
    pub const TRANSITIONS: &str = "mc.transitions";
    /// Quiescent leaves checked.
    pub const LEAVES: &str = "mc.leaves";
    /// Enabled actions skipped because they were asleep.
    pub const SLEEP_SKIPPED: &str = "mc.sleep_skipped";
}

/// A deterministic, process-independent hasher (FNV-1a with a SplitMix64
/// finalizer). `std`'s default hasher is seeded per process, which would
/// make state hashes — and therefore reports — unstable across runs and
/// workers.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: FNV alone is weak in the high bits.
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Convenience: the [`StableHasher`] digest of any `Hash` value.
pub fn stable_hash_of(value: &impl std::hash::Hash) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The system under exploration: a deterministic transition system with
/// explicit scheduler choice points.
///
/// Implementations must be deterministic — `enabled` order, `apply`
/// results, keys and hashes may depend only on the state — or traces will
/// not replay and sharded runs will disagree.
pub trait Model {
    /// A full system state. Cloned at every branch point.
    type State: Clone;
    /// One scheduler choice (deliver this message, fire that timer, ...).
    type Action: Clone + fmt::Debug;

    /// The initial state (after any deterministic warm-up).
    fn initial(&self) -> Self::State;

    /// All enabled actions, in a deterministic order.
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;

    /// A content-based identity for an enabled action: the same semantic
    /// action must map to the same key on every path and worker that can
    /// execute it (so sleep sets, cache subsets and replayed traces agree),
    /// and distinct enabled actions of one state must have distinct keys.
    fn action_key(&self, state: &Self::State, action: &Self::Action) -> u64;

    /// Conservative independence for partial-order reduction: return `true`
    /// only if, from `state` (where both are enabled), applying `a` and `b`
    /// in either order yields the same state and neither disables the
    /// other. When unsure, return `false` — that only costs exploration
    /// time, never soundness.
    fn commutes(&self, state: &Self::State, a: &Self::Action, b: &Self::Action) -> bool;

    /// Applies one action. Violations returned here abort the trace (e.g.
    /// divergence oracles that fire mid-trace).
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Step<Self::State>;

    /// Canonical state digest for revisit pruning. Must cover everything
    /// that influences future behavior — two states with equal hashes are
    /// treated as the same search node — and must be invariant under
    /// reorderings of commuting actions (or the reduction loses its point).
    fn state_hash(&self, state: &Self::State) -> u64;

    /// Violations checkable only at quiescence (no enabled actions), e.g.
    /// global agreement invariants.
    fn check_quiescent(&self, state: &Self::State) -> Vec<Violation>;
}

/// The result of applying one action.
#[derive(Debug, Clone)]
pub struct Step<S> {
    /// The successor state.
    pub state: S,
    /// Violations detected by this transition itself (empty = keep going).
    pub violations: Vec<Violation>,
}

impl<S> Step<S> {
    /// A violation-free step.
    pub fn ok(state: S) -> Step<S> {
        Step {
            state,
            violations: Vec::new(),
        }
    }
}

/// Exploration bounds and failure policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Maximum trace depth; deeper nodes are cut (marks the run
    /// incomplete).
    pub max_depth: usize,
    /// Maximum search states expanded; the budget marks the run incomplete
    /// when hit.
    pub max_states: u64,
    /// Stop at the first counterexample instead of collecting all leaves.
    pub fail_fast: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_depth: 256,
            max_states: 1_000_000,
            fail_fast: true,
        }
    }
}

/// Exploration statistics (deterministic for a fixed model + config).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Search states expanded (not counting pruned revisits).
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Revisits pruned by the state cache.
    pub pruned: u64,
    /// Enabled actions skipped because they were in the sleep set.
    pub sleep_skipped: u64,
    /// Quiescent leaves checked against the invariant suite.
    pub leaves: u64,
    /// Deepest explored trace.
    pub max_depth: usize,
}

impl McStats {
    fn absorb(&mut self, other: &McStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.pruned += other.pruned;
        self.sleep_skipped += other.sleep_skipped;
        self.leaves += other.leaves;
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// Publishes the statistics as PR-1 metrics counters.
    pub fn publish(&self, metrics: &mut MetricsRegistry) {
        let pairs = [
            (metric_names::STATES, self.states),
            (metric_names::PRUNED, self.pruned),
            (metric_names::MAX_DEPTH, self.max_depth as u64),
            (metric_names::TRANSITIONS, self.transitions),
            (metric_names::LEAVES, self.leaves),
            (metric_names::SLEEP_SKIPPED, self.sleep_skipped),
        ];
        for (name, value) in pairs {
            let id = metrics.counter(name);
            metrics.add(id, value);
        }
    }
}

/// A failing trace: the actions from the initial state to the violation,
/// their content keys (the replayable form), and what was violated.
#[derive(Debug, Clone)]
pub struct Counterexample<A> {
    /// The actions, in execution order.
    pub trace: Vec<A>,
    /// The content key of each action ([`Model::action_key`]).
    pub keys: Vec<u64>,
    /// The violations observed at the end of the trace.
    pub violations: Vec<Violation>,
}

/// The result of a (possibly sharded) exploration.
#[derive(Debug, Clone)]
pub struct McReport<A> {
    /// Search statistics.
    pub stats: McStats,
    /// `true` when the state space was exhausted within the configured
    /// bounds (no depth cut, no state budget hit, no fail-fast stop with
    /// unexplored siblings).
    pub complete: bool,
    /// The first counterexample found (in the canonical serial order), if
    /// any.
    pub counterexample: Option<Counterexample<A>>,
}

impl<A> McReport<A> {
    /// Whether every explored trace upheld every oracle.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let coverage = if self.complete {
            "state space exhausted"
        } else {
            "bounds hit before exhaustion"
        };
        match &self.counterexample {
            None => format!(
                "{} states, {} transitions, {} leaves, {} pruned, depth {} — {coverage}, all oracles held",
                self.stats.states,
                self.stats.transitions,
                self.stats.leaves,
                self.stats.pruned,
                self.stats.max_depth,
            ),
            Some(cx) => format!(
                "{} states explored — counterexample of {} step(s): {}",
                self.stats.states,
                cx.trace.len(),
                cx.violations
                    .first()
                    .map_or_else(|| "?".to_owned(), ToString::to_string),
            ),
        }
    }

    /// Renders the report as one stable JSON object. Two runs agree iff
    /// their rendered reports are byte-identical (the CI `--jobs` gate).
    pub fn to_json(&self) -> String {
        let cx = match &self.counterexample {
            None => JsonValue::Null,
            Some(cx) => JsonValue::obj(vec![
                ("steps", JsonValue::U64(cx.trace.len() as u64)),
                (
                    "keys",
                    JsonValue::Arr(cx.keys.iter().map(|&k| JsonValue::U64(k)).collect()),
                ),
                (
                    "violations",
                    JsonValue::Arr(
                        cx.violations
                            .iter()
                            .map(|v| {
                                JsonValue::obj(vec![
                                    ("invariant", JsonValue::Str(v.invariant.clone())),
                                    ("detail", JsonValue::Str(v.detail.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        JsonValue::obj(vec![
            ("states", JsonValue::U64(self.stats.states)),
            ("transitions", JsonValue::U64(self.stats.transitions)),
            ("pruned", JsonValue::U64(self.stats.pruned)),
            ("sleep_skipped", JsonValue::U64(self.stats.sleep_skipped)),
            ("leaves", JsonValue::U64(self.stats.leaves)),
            ("max_depth", JsonValue::U64(self.stats.max_depth as u64)),
            ("complete", JsonValue::Bool(self.complete)),
            ("passed", JsonValue::Bool(self.passed())),
            ("counterexample", cx),
        ])
        .to_json()
    }
}

/// A sleep-set entry: the action plus its content key.
type SleepEntry<A> = (u64, A);

struct Dfs<'m, M: Model> {
    model: &'m M,
    config: McConfig,
    /// state hash -> the sleep-set key sets it was expanded under.
    visited: HashMap<u64, Vec<BTreeSet<u64>>>,
    stats: McStats,
    complete: bool,
    counterexample: Option<Counterexample<M::Action>>,
    trace: Vec<M::Action>,
    keys: Vec<u64>,
    stop: bool,
}

impl<M: Model> Dfs<'_, M> {
    fn record_failure(&mut self, violations: Vec<Violation>) {
        if self.counterexample.is_none() {
            self.counterexample = Some(Counterexample {
                trace: self.trace.clone(),
                keys: self.keys.clone(),
                violations,
            });
        }
        if self.config.fail_fast {
            self.stop = true;
            // Unexplored siblings remain: the run is not a full proof.
            self.complete = false;
        }
    }

    fn dfs(&mut self, state: &M::State, sleep: &[SleepEntry<M::Action>], depth: usize) {
        if self.stop {
            return;
        }
        let sleep_keys: BTreeSet<u64> = sleep.iter().map(|(k, _)| *k).collect();
        let hash = self.model.state_hash(state);
        if let Some(prev) = self.visited.get(&hash) {
            // Sound pruning under sleep sets: an earlier visit explored a
            // superset of what we would iff its sleep set was a subset of
            // ours.
            if prev.iter().any(|p| p.is_subset(&sleep_keys)) {
                self.stats.pruned += 1;
                return;
            }
        }
        self.visited
            .entry(hash)
            .or_default()
            .push(sleep_keys.clone());
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.stats.states > self.config.max_states {
            self.complete = false;
            self.stop = true;
            return;
        }
        let enabled = self.model.enabled(state);
        let runnable = enabled
            .iter()
            .filter(|a| !sleep_keys.contains(&self.model.action_key(state, a)))
            .count();
        if enabled.is_empty() {
            self.stats.leaves += 1;
            let violations = self.model.check_quiescent(state);
            if !violations.is_empty() {
                self.record_failure(violations);
            }
            return;
        }
        if runnable == 0 {
            // Everything enabled is asleep: every interleaving from here is
            // a commutation of one already explored elsewhere.
            self.stats.sleep_skipped += enabled.len() as u64;
            return;
        }
        if depth >= self.config.max_depth {
            self.complete = false;
            return;
        }
        let mut explored: Vec<SleepEntry<M::Action>> = Vec::new();
        for action in enabled {
            let key = self.model.action_key(state, &action);
            if sleep_keys.contains(&key) {
                self.stats.sleep_skipped += 1;
                continue;
            }
            // The child sleeps on every earlier-explored or inherited
            // action that commutes with the one taken; dependent actions
            // wake up.
            let child_sleep: Vec<SleepEntry<M::Action>> = sleep
                .iter()
                .chain(explored.iter())
                .filter(|(_, other)| self.model.commutes(state, other, &action))
                .cloned()
                .collect();
            let step = self.model.apply(state, &action);
            self.stats.transitions += 1;
            self.trace.push(action.clone());
            self.keys.push(key);
            if step.violations.is_empty() {
                self.dfs(&step.state, &child_sleep, depth + 1);
            } else {
                self.record_failure(step.violations);
            }
            self.trace.pop();
            self.keys.pop();
            if self.stop {
                return;
            }
            explored.push((key, action));
        }
    }
}

/// Explores the model's full interleaving space from [`Model::initial`]
/// with one DFS (serial, shared state cache).
pub fn explore<M: Model>(model: &M, config: &McConfig) -> McReport<M::Action> {
    let initial = model.initial();
    let mut dfs = Dfs {
        model,
        config: *config,
        visited: HashMap::new(),
        stats: McStats::default(),
        complete: true,
        counterexample: None,
        trace: Vec::new(),
        keys: Vec::new(),
        stop: false,
    };
    dfs.dfs(&initial, &[], 0);
    McReport {
        stats: dfs.stats,
        complete: dfs.complete,
        counterexample: dfs.counterexample,
    }
}

/// A replayed trace: the resolved actions, their keys (including any
/// deterministic completion appended by [`replay`]), the violations hit,
/// and whether the final state was quiescent.
#[derive(Debug, Clone)]
pub struct Replay<A> {
    /// The actions actually applied, in order.
    pub trace: Vec<A>,
    /// Their content keys.
    pub keys: Vec<u64>,
    /// Violations from the last applied step or the quiescent check.
    pub violations: Vec<Violation>,
    /// Whether the trace ended in a quiescent state.
    pub quiescent: bool,
}

impl<A> Replay<A> {
    /// Whether the replay reproduced a failure.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Replays a key sequence from the initial state, resolving each key
/// against the enabled set ([`Model::action_key`]). Returns `None` if some
/// key no longer matches an enabled action (an invalid minimization
/// candidate). Stops early when a step reports violations.
///
/// With `complete` set, after the keys run out the remaining enabled
/// actions are applied deterministically (always the first enabled one)
/// until quiescence, a violation, or `max_depth` — so a shortened prefix
/// still drives the system to a checkable end state.
pub fn replay<M: Model>(
    model: &M,
    keys: &[u64],
    complete: bool,
    max_depth: usize,
) -> Option<Replay<M::Action>> {
    let mut state = model.initial();
    let mut out = Replay {
        trace: Vec::new(),
        keys: Vec::new(),
        violations: Vec::new(),
        quiescent: false,
    };
    let mut pending: VecDeque<u64> = keys.iter().copied().collect();
    loop {
        let enabled = model.enabled(&state);
        if enabled.is_empty() {
            if !pending.is_empty() {
                return None; // keys left over but nothing enabled
            }
            out.quiescent = true;
            out.violations = model.check_quiescent(&state);
            return Some(out);
        }
        let action = match pending.pop_front() {
            Some(key) => enabled
                .into_iter()
                .find(|a| model.action_key(&state, a) == key)?,
            None if complete && out.trace.len() < max_depth => {
                enabled.into_iter().next().expect("non-empty")
            }
            None => return Some(out),
        };
        let key = model.action_key(&state, &action);
        let step = model.apply(&state, &action);
        out.trace.push(action);
        out.keys.push(key);
        if !step.violations.is_empty() {
            out.violations = step.violations;
            return Some(out);
        }
        state = step.state;
    }
}

/// Shrinks a failing key sequence: first bisects for the shortest failing
/// prefix (choice-point bisection), then delta-debugs the prefix by
/// removing chunks of halving size while the failure still reproduces
/// under [`replay`] with deterministic completion.
///
/// Returns the minimized keys and their full replay (which includes any
/// deterministic completion steps, so the result is a complete
/// start-to-violation trace). The input must itself reproduce a failure.
pub fn minimize<M: Model>(
    model: &M,
    keys: &[u64],
    max_depth: usize,
) -> (Vec<u64>, Replay<M::Action>) {
    let fails =
        |candidate: &[u64]| replay(model, candidate, true, max_depth).is_some_and(|r| r.failed());
    assert!(fails(keys), "minimize() requires a reproducing trace");
    // Phase 1: shortest failing prefix, by bisection. Invariant: the full
    // prefix of length `hi` fails; probe whether length `mid` still does.
    let (mut lo, mut hi) = (0usize, keys.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&keys[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut current: Vec<u64> = keys[..hi].to_vec();
    // Phase 2: ddmin-style chunk removal inside the prefix.
    let mut chunk = current.len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current[..start].to_vec();
            candidate.extend_from_slice(&current[end..]);
            if fails(&candidate) {
                current = candidate; // retry the same window position
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    let replayed = replay(model, &current, true, max_depth).expect("minimized trace replays");
    debug_assert!(replayed.failed());
    (current, replayed)
}

/// How many DFS-subtree prefixes [`explore_sharded`] expands before
/// fanning out. Fixed (not derived from `jobs`) so the decomposition — and
/// therefore the report — is identical for every worker count.
const SHARD_PREFIXES: usize = 64;

/// One expanded DFS prefix, shippable across threads: the path (as content
/// keys, with the actions for trace reconstruction) and the subtree root's
/// sleep set (as keys — the worker resolves them against its own replayed
/// root state).
struct Prefix<A> {
    path_keys: Vec<u64>,
    path_actions: Vec<A>,
    sleep_keys: Vec<u64>,
    /// Violations that ended this prefix during expansion (step violations
    /// or a quiescent-leaf failure); such a prefix is terminal.
    violations: Vec<Violation>,
    terminal: bool,
}

/// Sharded exploration: BFS-expands the top of the tree into at most
/// [`SHARD_PREFIXES`] subtree prefixes, then explores each subtree with an
/// independent DFS across `jobs` workers ([`par::sweep`]).
///
/// Statistics are merged in prefix order and a counterexample is
/// canonicalized to the first failing prefix, so the report is
/// **byte-identical for every `jobs` value** — the CI gate diffs the
/// rendered JSON across worker counts. Each subtree has a private state
/// cache; cross-subtree revisits are re-explored, so sharded totals exceed
/// the serial [`explore`] totals (deterministically so).
pub fn explore_sharded<M>(model: &M, config: &McConfig, jobs: usize) -> McReport<M::Action>
where
    M: Model + Sync,
    M::Action: Send + Sync,
{
    // --- Phase 1: deterministic serial expansion of the tree's top. ---
    let mut expansion_stats = McStats::default();
    let mut complete = true;
    // Work queue of open prefixes, each carrying its replayed state.
    struct Open<M: Model> {
        state: M::State,
        path_keys: Vec<u64>,
        path_actions: Vec<M::Action>,
        sleep: Vec<SleepEntry<M::Action>>,
    }
    let mut open: VecDeque<Open<M>> = VecDeque::new();
    let mut done: Vec<Prefix<M::Action>> = Vec::new();
    open.push_back(Open {
        state: model.initial(),
        path_keys: Vec::new(),
        path_actions: Vec::new(),
        sleep: Vec::new(),
    });
    while open.len() + done.len() < SHARD_PREFIXES {
        let Some(node) = open.pop_front() else { break };
        let enabled = model.enabled(&node.state);
        let sleep_keys: BTreeSet<u64> = node.sleep.iter().map(|(k, _)| *k).collect();
        if enabled.is_empty() {
            expansion_stats.states += 1;
            expansion_stats.max_depth = expansion_stats.max_depth.max(node.path_keys.len());
            expansion_stats.leaves += 1;
            let violations = model.check_quiescent(&node.state);
            done.push(Prefix {
                path_keys: node.path_keys,
                path_actions: node.path_actions,
                sleep_keys: Vec::new(),
                violations,
                terminal: true,
            });
            continue;
        }
        let runnable: Vec<&M::Action> = enabled
            .iter()
            .filter(|a| !sleep_keys.contains(&model.action_key(&node.state, a)))
            .collect();
        if runnable.is_empty() {
            expansion_stats.states += 1;
            expansion_stats.sleep_skipped += enabled.len() as u64;
            continue; // fully asleep: covered elsewhere, not a subtree
        }
        if node.path_keys.len() >= config.max_depth {
            expansion_stats.states += 1;
            complete = false;
            continue;
        }
        // Expand this node exactly as the DFS sibling loop would.
        expansion_stats.states += 1;
        expansion_stats.max_depth = expansion_stats.max_depth.max(node.path_keys.len());
        let mut explored: Vec<SleepEntry<M::Action>> = Vec::new();
        let mut failed_here = false;
        for action in model.enabled(&node.state) {
            let key = model.action_key(&node.state, &action);
            if sleep_keys.contains(&key) {
                expansion_stats.sleep_skipped += 1;
                continue;
            }
            let child_sleep: Vec<SleepEntry<M::Action>> = node
                .sleep
                .iter()
                .chain(explored.iter())
                .filter(|(_, other)| model.commutes(&node.state, other, &action))
                .cloned()
                .collect();
            if !failed_here {
                let step = model.apply(&node.state, &action);
                expansion_stats.transitions += 1;
                let mut path_keys = node.path_keys.clone();
                path_keys.push(key);
                let mut path_actions = node.path_actions.clone();
                path_actions.push(action.clone());
                if step.violations.is_empty() {
                    open.push_back(Open {
                        state: step.state,
                        path_keys,
                        path_actions,
                        sleep: child_sleep,
                    });
                } else {
                    done.push(Prefix {
                        path_keys,
                        path_actions,
                        sleep_keys: Vec::new(),
                        violations: step.violations,
                        terminal: true,
                    });
                    if config.fail_fast {
                        // Siblings after a fail-fast hit stay unexplored in
                        // the serial order; mirror that by stopping this
                        // node's expansion (canonical truncation happens in
                        // the merge below).
                        failed_here = true;
                    }
                }
            }
            explored.push((key, action));
        }
        if failed_here {
            complete = false;
            break;
        }
    }
    // Remaining open nodes become subtree tasks.
    for node in open {
        done.push(Prefix {
            sleep_keys: node.sleep.iter().map(|(k, _)| *k).collect(),
            path_keys: node.path_keys,
            path_actions: node.path_actions,
            violations: Vec::new(),
            terminal: false,
        });
    }
    // The expansion above emits prefixes in BFS order, which is a pure
    // function of the model — independent of `jobs` — and that is all the
    // byte-identity guarantee needs. Keep insertion order.
    let prefixes = done;

    // --- Phase 2: fan the subtrees out over the worker pool. ---
    struct SubtreeResult<A> {
        stats: McStats,
        complete: bool,
        counterexample: Option<Counterexample<A>>,
    }
    let results: Vec<Option<SubtreeResult<M::Action>>> = par::sweep(
        jobs.max(1),
        prefixes.len(),
        |_| (),
        |(), index| {
            let prefix = &prefixes[index];
            if prefix.terminal {
                return SubtreeResult {
                    stats: McStats::default(),
                    complete: true,
                    counterexample: (!prefix.violations.is_empty()).then(|| Counterexample {
                        trace: prefix.path_actions.clone(),
                        keys: prefix.path_keys.clone(),
                        violations: prefix.violations.clone(),
                    }),
                };
            }
            // Rebuild the subtree root in-thread by replaying the prefix,
            // then resolve the sleep keys against its enabled actions.
            let mut state = model.initial();
            for key in &prefix.path_keys {
                let enabled = model.enabled(&state);
                let action = enabled
                    .into_iter()
                    .find(|a| model.action_key(&state, a) == *key)
                    .expect("prefix keys replay deterministically");
                state = model.apply(&state, &action).state;
            }
            let sleep: Vec<SleepEntry<M::Action>> = model
                .enabled(&state)
                .into_iter()
                .filter_map(|a| {
                    let k = model.action_key(&state, &a);
                    prefix.sleep_keys.contains(&k).then_some((k, a))
                })
                .collect();
            let mut dfs = Dfs {
                model,
                config: McConfig {
                    // Depth budget is global trace depth, not subtree depth.
                    max_depth: config.max_depth.saturating_sub(prefix.path_keys.len()),
                    ..*config
                },
                visited: HashMap::new(),
                stats: McStats::default(),
                complete: true,
                counterexample: None,
                trace: Vec::new(),
                keys: Vec::new(),
                stop: false,
            };
            dfs.dfs(&state, &sleep, 0);
            let counterexample = dfs.counterexample.map(|cx| Counterexample {
                trace: prefix
                    .path_actions
                    .iter()
                    .cloned()
                    .chain(cx.trace)
                    .collect(),
                keys: prefix.path_keys.iter().copied().chain(cx.keys).collect(),
                violations: cx.violations,
            });
            SubtreeResult {
                stats: McStats {
                    max_depth: dfs.stats.max_depth + prefix.path_keys.len(),
                    ..dfs.stats
                },
                complete: dfs.complete,
                counterexample,
            }
        },
        |result| config.fail_fast && result.counterexample.is_some(),
    );

    // --- Phase 3: canonical merge, truncated at the first failing prefix
    // (completed slots form a prefix of the task range, so the scan sees
    // everything the serial order would have). ---
    let mut stats = expansion_stats;
    let mut counterexample = None;
    for result in results.into_iter().flatten() {
        stats.absorb(&result.stats);
        complete &= result.complete;
        if result.counterexample.is_some() && counterexample.is_none() {
            counterexample = result.counterexample;
            if config.fail_fast {
                complete = false;
                break;
            }
        }
    }
    McReport {
        stats,
        complete,
        counterexample,
    }
}

/// Bounds for [`backward_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackwardConfig {
    /// Maximum BFS levels (trace depth) expanded from the initial state
    /// while building the predecessor graph.
    pub max_levels: usize,
    /// Maximum distinct states recorded before the search stops (marks the
    /// run incomplete).
    pub max_states: u64,
}

impl Default for BackwardConfig {
    fn default() -> Self {
        BackwardConfig {
            max_levels: 64,
            max_states: 250_000,
        }
    }
}

/// Statistics of a [`backward_search`] run (deterministic for a fixed
/// model + config + target set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackwardStats {
    /// Distinct states recorded in the predecessor graph.
    pub states: u64,
    /// Transitions applied while building it.
    pub transitions: u64,
    /// BFS levels fully expanded.
    pub levels: usize,
}

/// The outcome of a [`backward_search`]: whether a seeded target state was
/// reached and, if so, the shortest witness schedule leading to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackwardReport {
    /// Search statistics.
    pub stats: BackwardStats,
    /// `true` when the search was conclusive: a target was found, or the
    /// whole reachable space was exhausted within the bounds.
    pub complete: bool,
    /// The first target state hash reached (in the canonical level order),
    /// if any.
    pub target: Option<u64>,
    /// The shortest action-key schedule from the initial state to the
    /// target (replayable with [`replay`]); empty when no target was
    /// reached.
    pub witness_keys: Vec<u64>,
}

impl BackwardReport {
    /// Whether a seeded target state was reached.
    pub fn found(&self) -> bool {
        self.target.is_some()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self.target {
            Some(t) => format!(
                "target {t:#x} reached backward in {} step(s) ({} states, {} levels)",
                self.witness_keys.len(),
                self.stats.states,
                self.stats.levels,
            ),
            None => format!(
                "no target reached ({} states, {} levels, {})",
                self.stats.states,
                self.stats.levels,
                if self.complete {
                    "reachable space exhausted"
                } else {
                    "bounds hit"
                },
            ),
        }
    }

    /// Renders the report as one stable JSON object; two runs agree iff
    /// the rendered reports are byte-identical (the CI `--jobs` gate).
    pub fn to_json(&self) -> String {
        JsonValue::obj(vec![
            ("states", JsonValue::U64(self.stats.states)),
            ("transitions", JsonValue::U64(self.stats.transitions)),
            ("levels", JsonValue::U64(self.stats.levels as u64)),
            ("complete", JsonValue::Bool(self.complete)),
            ("found", JsonValue::Bool(self.found())),
            (
                "target",
                self.target.map_or(JsonValue::Null, JsonValue::U64),
            ),
            (
                "witness_keys",
                JsonValue::Arr(
                    self.witness_keys
                        .iter()
                        .map(|&k| JsonValue::U64(k))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }
}

/// Backward search from recorded violation states (Helmy et al.'s global
/// search strategy, adapted to a non-invertible model): given the
/// canonical hashes of one or more *target* states — typically captured by
/// replaying a forward counterexample to its violation — find the shortest
/// schedule that reaches one.
///
/// Protocol transitions cannot be inverted, so the backward walk runs over
/// an explicitly recorded predecessor relation:
///
/// * **Phase A (predecessor graph)**: a level-synchronized BFS from the
///   initial state records, for every newly reached canonical state, the
///   `(predecessor hash, action key)` edge that first discovered it. The
///   BFS runs without sleep sets — unlike the fail-fast forward DFS of
///   [`explore`], it maps *every* reachable state up to the target's
///   depth, so it reaches violation states on interleavings the forward
///   search stopped short of. Each level fans its node expansions out over
///   `jobs` workers ([`par::sweep`]); workers rebuild their node in-thread
///   by replaying its key path (states never cross threads) and results
///   merge in frontier order, so the report is **byte-identical for every
///   `jobs` value**.
/// * **Phase B (backward walk)**: from the first target hash reached, the
///   recorded predecessor edges are followed *backward* to the initial
///   state; reversing that walk yields the shortest witness schedule,
///   replayable bit-for-bit with [`replay`].
///
/// A search is `complete` when it found a target or exhausted the
/// reachable space within the bounds; hitting `max_levels`/`max_states`
/// first makes the no-target answer inconclusive.
pub fn backward_search<M>(
    model: &M,
    config: &BackwardConfig,
    targets: &[u64],
    jobs: usize,
) -> BackwardReport
where
    M: Model + Sync,
    M::Action: Send + Sync,
{
    let targets: BTreeSet<u64> = targets.iter().copied().collect();
    let initial = model.initial();
    let init_hash = model.state_hash(&initial);
    // succ hash -> (pred hash, action key): the first-discovery edge, i.e.
    // an edge on some shortest path from the initial state.
    let mut pred: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut seen: BTreeSet<u64> = BTreeSet::from([init_hash]);
    let mut stats = BackwardStats {
        states: 1,
        ..BackwardStats::default()
    };
    let mut complete = true;
    let mut found: Option<u64> = targets.contains(&init_hash).then_some(init_hash);
    // Frontier nodes carry their key path so workers can rebuild them.
    let mut frontier: Vec<(u64, Vec<u64>)> = vec![(init_hash, Vec::new())];
    while found.is_none() && !frontier.is_empty() && complete {
        if stats.levels >= config.max_levels {
            complete = false;
            break;
        }
        let expansions: Vec<Option<Vec<(u64, u64)>>> = par::sweep(
            jobs.max(1),
            frontier.len(),
            |_| (),
            |(), index| {
                let (_, path) = &frontier[index];
                let mut state = model.initial();
                for key in path {
                    let action = model
                        .enabled(&state)
                        .into_iter()
                        .find(|a| model.action_key(&state, a) == *key)
                        .expect("frontier paths replay deterministically");
                    state = model.apply(&state, &action).state;
                }
                model
                    .enabled(&state)
                    .into_iter()
                    .map(|action| {
                        let key = model.action_key(&state, &action);
                        let succ = model.apply(&state, &action).state;
                        (key, model.state_hash(&succ))
                    })
                    .collect()
            },
            |_| false,
        );
        stats.levels += 1;
        let mut next: Vec<(u64, Vec<u64>)> = Vec::new();
        'merge: for (index, result) in expansions.into_iter().enumerate() {
            let successors = result.expect("level workers never cancel");
            let (parent_hash, path) = &frontier[index];
            for (key, succ_hash) in successors {
                stats.transitions += 1;
                if !seen.insert(succ_hash) {
                    continue;
                }
                pred.insert(succ_hash, (*parent_hash, key));
                stats.states += 1;
                if targets.contains(&succ_hash) {
                    // First target in frontier order: canonical across
                    // worker counts because the merge is index-ordered.
                    found = Some(succ_hash);
                    break 'merge;
                }
                if stats.states >= config.max_states {
                    complete = false;
                    break 'merge;
                }
                let mut child_path = path.clone();
                child_path.push(key);
                next.push((succ_hash, child_path));
            }
        }
        frontier = next;
    }
    // Phase B: the backward walk proper — follow predecessor edges from
    // the target to the initial state, then reverse into the witness.
    let witness_keys = found.map_or_else(Vec::new, |target| {
        let mut keys = Vec::new();
        let mut cursor = target;
        while cursor != init_hash {
            let (parent, key) = pred[&cursor];
            keys.push(key);
            cursor = parent;
        }
        keys.reverse();
        keys
    });
    BackwardReport {
        stats,
        complete,
        target: found,
        witness_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: `writers` independent writer processes each write their
    /// own cell once, plus an optional pair of *conflicting* writers to one
    /// shared cell. Quiescence fails iff the shared cell ends at a
    /// configured "bad" value (only one write order produces it).
    struct Toy {
        writers: usize,
        conflict: bool,
        bad_shared: u8,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct ToyState {
        cells: Vec<bool>,
        shared: u8,
        shared_writers_left: Vec<u8>,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum ToyAction {
        Write(usize),
        WriteShared(u8),
    }

    impl Model for Toy {
        type State = ToyState;
        type Action = ToyAction;

        fn initial(&self) -> ToyState {
            ToyState {
                cells: vec![false; self.writers],
                shared: 0,
                shared_writers_left: if self.conflict { vec![1, 2] } else { vec![] },
            }
        }

        fn enabled(&self, s: &ToyState) -> Vec<ToyAction> {
            let mut out: Vec<ToyAction> = s
                .cells
                .iter()
                .enumerate()
                .filter(|(_, done)| !**done)
                .map(|(i, _)| ToyAction::Write(i))
                .collect();
            out.extend(
                s.shared_writers_left
                    .iter()
                    .map(|&w| ToyAction::WriteShared(w)),
            );
            out
        }

        fn action_key(&self, _s: &ToyState, a: &ToyAction) -> u64 {
            match a {
                ToyAction::Write(i) => *i as u64,
                ToyAction::WriteShared(w) => 1000 + *w as u64,
            }
        }

        fn commutes(&self, _s: &ToyState, a: &ToyAction, b: &ToyAction) -> bool {
            // Private-cell writes commute with everything; shared writes
            // conflict with each other.
            !matches!(
                (a, b),
                (ToyAction::WriteShared(_), ToyAction::WriteShared(_))
            )
        }

        fn apply(&self, s: &ToyState, a: &ToyAction) -> Step<ToyState> {
            let mut next = s.clone();
            match a {
                ToyAction::Write(i) => next.cells[*i] = true,
                ToyAction::WriteShared(w) => {
                    next.shared = *w;
                    next.shared_writers_left.retain(|x| x != w);
                }
            }
            Step::ok(next)
        }

        fn state_hash(&self, s: &ToyState) -> u64 {
            stable_hash_of(&(&s.cells, s.shared, &s.shared_writers_left))
        }

        fn check_quiescent(&self, s: &ToyState) -> Vec<Violation> {
            if s.shared == self.bad_shared {
                vec![Violation {
                    invariant: "shared".into(),
                    detail: format!("shared cell ended at {}", s.shared),
                }]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn por_collapses_independent_interleavings() {
        // 4 fully independent writers: 4! = 24 interleavings, but with
        // sleep sets + caching only one maximal trace's worth of leaves.
        let model = Toy {
            writers: 4,
            conflict: false,
            bad_shared: 99,
        };
        let report = explore(&model, &McConfig::default());
        assert!(report.passed());
        assert!(report.complete);
        assert_eq!(report.stats.leaves, 1, "{:?}", report.stats);
        assert_eq!(report.stats.max_depth, 4);
        // The visited cache + sleep sets must keep the tree near-linear:
        // well under the 2^4 = 16 distinct subsets.
        assert!(report.stats.states <= 16, "{:?}", report.stats);
    }

    #[test]
    fn conflicting_actions_are_still_fully_explored() {
        // Two conflicting shared writes: both orders must be explored, so
        // the bad final value (shared == 1, i.e. writer 1 last) is found.
        let model = Toy {
            writers: 1,
            conflict: true,
            bad_shared: 1,
        };
        let report = explore(&model, &McConfig::default());
        let cx = report.counterexample.expect("order 2-then-1 must be found");
        assert_eq!(cx.violations[0].invariant, "shared");
        // And with no bad value configured, both orders pass and quiesce.
        let clean = Toy {
            writers: 1,
            conflict: true,
            bad_shared: 99,
        };
        let report = explore(&clean, &McConfig::default());
        assert!(report.passed());
        assert!(report.complete);
        assert_eq!(report.stats.leaves, 2, "one leaf per shared-write order");
    }

    #[test]
    fn counterexample_minimizes_to_the_conflict_core() {
        // 3 independent writers ride along with the conflicting pair; the
        // minimized trace must shed all of them.
        let model = Toy {
            writers: 3,
            conflict: true,
            bad_shared: 1,
        };
        let report = explore(
            &model,
            &McConfig {
                fail_fast: true,
                ..McConfig::default()
            },
        );
        let cx = report.counterexample.expect("bad order exists");
        let (keys, replayed) = minimize(&model, &cx.keys, 64);
        assert!(replayed.failed());
        // The failure needs only "writer 2 before writer 1" forced; the
        // replay completion fills in the independent writes.
        assert!(keys.len() <= 2, "not minimal: {keys:?}");
        assert!(keys.contains(&1002), "must force the 2-write first");
    }

    #[test]
    fn replay_is_bit_for_bit() {
        let model = Toy {
            writers: 2,
            conflict: true,
            bad_shared: 1,
        };
        let report = explore(&model, &McConfig::default());
        let cx = report.counterexample.unwrap();
        let a = replay(&model, &cx.keys, false, 64).expect("trace replays");
        let b = replay(&model, &cx.keys, false, 64).expect("trace replays");
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.violations, cx.violations);
        // A corrupted key sequence is rejected, not misreplayed.
        let mut broken = cx.keys.clone();
        broken[0] = 0xDEAD_BEEF;
        assert!(replay(&model, &broken, false, 64).is_none());
    }

    #[test]
    fn sharded_report_is_byte_identical_across_jobs() {
        for (conflict, bad) in [(false, 99), (true, 1)] {
            let model = Toy {
                writers: 4,
                conflict,
                bad_shared: bad,
            };
            let config = McConfig::default();
            let baseline = explore_sharded(&model, &config, 1).to_json();
            for jobs in [2, 4, 8] {
                let report = explore_sharded(&model, &config, jobs).to_json();
                assert_eq!(baseline, report, "jobs={jobs} diverged");
            }
        }
    }

    #[test]
    fn state_budget_marks_the_run_incomplete() {
        let model = Toy {
            writers: 6,
            conflict: false,
            bad_shared: 99,
        };
        let report = explore(
            &model,
            &McConfig {
                max_states: 3,
                ..McConfig::default()
            },
        );
        assert!(!report.complete);
        assert!(report.stats.states <= 4);
    }

    /// Applies `keys` from the initial state and returns the final state's
    /// canonical hash.
    fn hash_after<M: Model>(model: &M, keys: &[u64]) -> u64 {
        let mut state = model.initial();
        for key in keys {
            let action = model
                .enabled(&state)
                .into_iter()
                .find(|a| model.action_key(&state, a) == *key)
                .expect("key resolves");
            state = model.apply(&state, &action).state;
        }
        model.state_hash(&state)
    }

    #[test]
    fn backward_search_reaches_a_seeded_state_with_a_shortest_witness() {
        let model = Toy {
            writers: 2,
            conflict: true,
            bad_shared: 1,
        };
        // Seed: the "bad" quiescent state (both private writes done, shared
        // written 2 then 1), as a forward replay would capture it.
        let target = hash_after(&model, &[0, 1, 1002, 1001]);
        let report = backward_search(&model, &BackwardConfig::default(), &[target], 1);
        assert!(report.found(), "{}", report.summary());
        assert!(report.complete);
        assert_eq!(report.target, Some(target));
        // The witness is shortest (all four actions are load-bearing for
        // this state) and replays to exactly the seeded state.
        assert_eq!(report.witness_keys.len(), 4);
        assert_eq!(hash_after(&model, &report.witness_keys), target);
    }

    #[test]
    fn backward_search_exhausts_the_space_when_no_target_is_reachable() {
        let model = Toy {
            writers: 2,
            conflict: true,
            bad_shared: 1,
        };
        let report = backward_search(&model, &BackwardConfig::default(), &[0xDEAD_BEEF], 1);
        assert!(!report.found());
        assert!(report.complete, "reachable space must be exhausted");
        assert!(report.witness_keys.is_empty());
    }

    #[test]
    fn backward_search_bounds_mark_the_run_inconclusive() {
        let model = Toy {
            writers: 2,
            conflict: true,
            bad_shared: 1,
        };
        let target = hash_after(&model, &[0, 1, 1002, 1001]);
        let report = backward_search(
            &model,
            &BackwardConfig {
                max_levels: 1,
                ..BackwardConfig::default()
            },
            &[target],
            1,
        );
        assert!(!report.found());
        assert!(!report.complete, "level budget must mark inconclusive");
    }

    #[test]
    fn backward_report_is_byte_identical_across_jobs() {
        let model = Toy {
            writers: 3,
            conflict: true,
            bad_shared: 1,
        };
        let target = hash_after(&model, &[0, 1, 2, 1002, 1001]);
        let config = BackwardConfig::default();
        let baseline = backward_search(&model, &config, &[target], 1).to_json();
        for jobs in [2, 4, 8] {
            let report = backward_search(&model, &config, &[target], jobs).to_json();
            assert_eq!(baseline, report, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn stable_hasher_is_deterministic_and_spreads() {
        assert_eq!(stable_hash_of(&42u64), stable_hash_of(&42u64));
        assert_ne!(stable_hash_of(&42u64), stable_hash_of(&43u64));
        let a = stable_hash_of(&"abc");
        let b = stable_hash_of(&"acb");
        assert_ne!(a, b, "permutations must hash differently");
    }
}
