//! The two-level hierarchical D-GMC switch: full signaling over the DES.
//!
//! Every switch runs the *unchanged* flat [`DgmcEngine`] for its own area;
//! border switches additionally run a second engine instance over the
//! level-2 [`Backbone`]. The two levels couple through purely local rules at
//! each area's designated *attachment border* (the smallest border id of the
//! area, a deterministic choice every switch can make):
//!
//! * **up-coupling** — when the attachment observes (through its area
//!   engine) that the area has members for a connection, it joins the
//!   backbone instance of that connection on the area's behalf; when the
//!   area empties, it leaves;
//! * **down-coupling** — when the attachment observes (through its backbone
//!   engine) that the connection spans **two or more** areas, it joins its
//!   own area's connection as a *relay* so the area tree spans it; when the
//!   connection collapses back to one area, the relay leaves.
//!
//! Flooding is scoped: area MC LSAs relay over intra-area links only, so an
//! intra-area event reaches `|area|` switches (the [`crate::scope`] win,
//! now realized in actual packet counts); backbone MC LSAs travel *logical*
//! links — border-to-border tunnels whose latency is the expansion path's
//! hop count times the per-hop delay.
//!
//! Data crosses levels at attachments: packets tree-flood within the member
//! areas and ride the backbone tree (expanded over tunnels) between them.

use crate::backbone::Backbone;
use crate::{AreaId, AreaMap};
use dgmc_core::switch::DgmcConfig;
use dgmc_core::{DgmcAction, DgmcEngine, McId, McLsa};
use dgmc_des::{Actor, ActorId, Ctx, Envelope, Simulation};
use dgmc_lsr::flood::Flooder;
use dgmc_lsr::lsa::FloodPacket;
use dgmc_mctree::{McAlgorithm, McType, Role};
use dgmc_topology::{LinkId, Network, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Which protocol instance a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// The switch's own area instance.
    Area,
    /// The border-switch backbone instance.
    Backbone,
}

/// A data packet in the hierarchical data plane.
#[derive(Debug, Clone)]
pub struct HierData {
    /// The connection.
    pub mc: McId,
    /// Harness-assigned id.
    pub packet_id: u64,
    /// Originating switch.
    pub origin: NodeId,
    /// Delivery phase.
    pub kind: HierDataKind,
}

/// Delivery phase of a [`HierData`].
#[derive(Debug, Clone)]
pub enum HierDataKind {
    /// Riding an area tree; `via` is the physical arrival link.
    AreaTree {
        /// Arrival link, `None` at injection.
        via: Option<LinkId>,
    },
    /// Riding the backbone tree; `from` is the logical sender.
    BackboneHop {
        /// The border that tunneled the packet here.
        from: NodeId,
    },
}

/// Messages delivered to a [`HierSwitch`].
#[derive(Debug, Clone)]
pub enum HierMsg {
    /// An intra-area flood packet arriving over a physical link.
    AreaPacket {
        /// The packet.
        packet: FloodPacket<McLsa>,
        /// Arrival link.
        via: LinkId,
    },
    /// A backbone flood packet tunneled from another border.
    BackbonePacket {
        /// The packet.
        packet: FloodPacket<McLsa>,
        /// The tunneling border.
        from: NodeId,
    },
    /// An attached host joins `mc`.
    HostJoin {
        /// The connection.
        mc: McId,
        /// Type used when creating.
        mc_type: McType,
        /// Member role.
        role: Role,
    },
    /// An attached host leaves `mc`.
    HostLeave {
        /// The connection.
        mc: McId,
    },
    /// A `Tc` computation timer fired for the given level.
    ComputationDone {
        /// Which engine was computing.
        level: Level,
        /// The connection.
        mc: McId,
    },
    /// A host hands over a data packet.
    SendData {
        /// The connection.
        mc: McId,
        /// Packet id.
        packet_id: u64,
    },
    /// A data packet in flight.
    Data(HierData),
}

/// Counter names bumped by [`HierSwitch`].
pub mod counters {
    /// Area-level MC LSA receptions (flood scope numerator).
    pub const AREA_LSAS: &str = "hier.area_lsas";
    /// Backbone-level MC LSA receptions.
    pub const BB_LSAS: &str = "hier.bb_lsas";
    /// Area-level topology computations.
    pub const AREA_COMPUTATIONS: &str = "hier.area_computations";
    /// Backbone-level topology computations.
    pub const BB_COMPUTATIONS: &str = "hier.bb_computations";
    /// Data packets delivered to member hosts.
    pub const DATA_DELIVERED: &str = "hier.data_delivered";
}

/// A switch participating in two-level hierarchical D-GMC.
pub struct HierSwitch {
    me: NodeId,
    area: AreaId,
    config: DgmcConfig,
    /// Static intra-area subgraph (this hierarchical variant models
    /// membership dynamics; link events are the flat protocol's domain).
    area_net: Rc<Network>,
    backbone: Rc<Backbone>,
    /// Designated attachment border of this switch's own area.
    my_attachment: NodeId,
    area_engine: DgmcEngine,
    bb_engine: Option<DgmcEngine>,
    area_flooder: Flooder,
    bb_flooder: Flooder,
    intra_links: Vec<(LinkId, NodeId)>,
    /// Logical backbone neighbors with tunnel hop counts (borders only).
    bb_neighbors: Vec<(NodeId, u64)>,
    /// Connections where a local host is a member (vs. relay joins).
    host_member: BTreeSet<McId>,
    /// MC types seen, for relay joins.
    mc_types: BTreeMap<McId, McType>,
    delivered: BTreeMap<(McId, u64), u32>,
}

impl std::fmt::Debug for HierSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierSwitch")
            .field("me", &self.me)
            .field("area", &self.area)
            .finish()
    }
}

impl HierSwitch {
    /// Creates the switch.
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: NodeId,
        net: &Network,
        map: &AreaMap,
        area_net: Rc<Network>,
        backbone: Rc<Backbone>,
        config: DgmcConfig,
        algorithm: Rc<dyn McAlgorithm>,
        attachments: &BTreeMap<AreaId, NodeId>,
    ) -> HierSwitch {
        let area = map.area_of(me);
        let borders = map.borders(net);
        let is_border = borders.contains(&me);
        let intra_links = net
            .links()
            .filter(|l| l.is_up() && (l.a == me || l.b == me))
            .filter(|l| map.area_of(l.a) == map.area_of(l.b))
            .map(|l| (l.id, l.other(me)))
            .collect();
        let bb_neighbors = if is_border {
            backbone
                .logical()
                .neighbors(me)
                .map(|(n, link)| {
                    let hops = backbone
                        .expand(link.a, link.b)
                        .map(|p| (p.len().saturating_sub(1)) as u64)
                        .unwrap_or(1);
                    (n, hops.max(1))
                })
                .collect()
        } else {
            Vec::new()
        };
        HierSwitch {
            me,
            area,
            config,
            area_net,
            backbone,
            my_attachment: attachments[&area],
            area_engine: DgmcEngine::new(me, net.len(), Rc::clone(&algorithm)),
            bb_engine: is_border.then(|| DgmcEngine::new(me, net.len(), algorithm)),
            area_flooder: Flooder::new(me),
            bb_flooder: Flooder::new(me),
            intra_links,
            bb_neighbors,
            host_member: BTreeSet::new(),
            mc_types: BTreeMap::new(),
            delivered: BTreeMap::new(),
        }
    }

    /// The area-level engine (for inspection).
    pub fn area_engine(&self) -> &DgmcEngine {
        &self.area_engine
    }

    /// The backbone engine, if this switch is a border.
    pub fn backbone_engine(&self) -> Option<&DgmcEngine> {
        self.bb_engine.as_ref()
    }

    /// Copies of `(mc, packet_id)` delivered to the local host.
    pub fn delivered_copies(&self, mc: McId, packet_id: u64) -> u32 {
        self.delivered.get(&(mc, packet_id)).copied().unwrap_or(0)
    }

    /// Returns `true` if this switch is its area's designated attachment.
    pub fn is_attachment(&self) -> bool {
        self.me == self.my_attachment
    }

    fn flood_area(&mut self, ctx: &mut Ctx<'_, HierMsg>, lsa: McLsa) {
        let packet = self.area_flooder.originate(lsa);
        for &(link, neighbor) in &self.intra_links {
            ctx.send(
                ActorId(neighbor.0),
                self.config.per_hop,
                HierMsg::AreaPacket {
                    packet: packet.clone(),
                    via: link,
                },
            );
        }
    }

    fn flood_backbone(&mut self, ctx: &mut Ctx<'_, HierMsg>, lsa: McLsa) {
        let packet = self.bb_flooder.originate(lsa);
        for &(neighbor, hops) in &self.bb_neighbors {
            ctx.send(
                ActorId(neighbor.0),
                self.config.per_hop * hops,
                HierMsg::BackbonePacket {
                    packet: packet.clone(),
                    from: self.me,
                },
            );
        }
    }

    fn execute(&mut self, ctx: &mut Ctx<'_, HierMsg>, level: Level, actions: Vec<DgmcAction>) {
        for action in actions {
            match action {
                DgmcAction::Flood(lsa) => match level {
                    Level::Area => self.flood_area(ctx, lsa),
                    Level::Backbone => self.flood_backbone(ctx, lsa),
                },
                DgmcAction::StartComputation { mc } => {
                    let counter = match level {
                        Level::Area => counters::AREA_COMPUTATIONS,
                        Level::Backbone => counters::BB_COMPUTATIONS,
                    };
                    ctx.counter(counter).incr();
                    ctx.schedule_self(self.config.tc, HierMsg::ComputationDone { level, mc });
                }
                DgmcAction::Installed { .. } | DgmcAction::Withdrawn { .. } => {}
            }
        }
    }

    /// `true` when the area has *host* members for `mc` — the attachment's
    /// own relay membership (a down-coupling artifact) does not count, or
    /// empty areas would re-attach themselves forever.
    fn area_has_host_members(&self, mc: McId) -> bool {
        self.area_engine.state(mc).is_some_and(|st| {
            st.members
                .keys()
                .any(|&m| m != self.me || self.host_member.contains(&mc))
        })
    }

    /// Up-coupling: the attachment mirrors its area's membership into the
    /// backbone connection.
    fn couple_up(&mut self, ctx: &mut Ctx<'_, HierMsg>, mc: McId) {
        if !self.is_attachment() {
            return;
        }
        let area_has_members = self.area_has_host_members(mc);
        let Some(bb) = self.bb_engine.as_mut() else {
            return;
        };
        let bb_member = bb.is_member(mc);
        let mc_type = self.mc_types.get(&mc).copied().unwrap_or(McType::Symmetric);
        if area_has_members && !bb_member {
            let actions = bb.local_join(mc, mc_type, Role::Receiver);
            self.execute(ctx, Level::Backbone, actions);
        } else if !area_has_members && bb_member {
            let actions = bb.local_leave(mc);
            self.execute(ctx, Level::Backbone, actions);
        }
    }

    /// Down-coupling: the attachment joins its area connection as a relay
    /// while the connection spans multiple areas.
    fn couple_down(&mut self, ctx: &mut Ctx<'_, HierMsg>, mc: McId) {
        if !self.is_attachment() {
            return;
        }
        let Some(bb) = self.bb_engine.as_ref() else {
            return;
        };
        let span = bb.state(mc).map(|st| st.members.len()).unwrap_or(0);
        let cross_area = span >= 2;
        let am_area_member = self.area_engine.is_member(mc);
        let host = self.host_member.contains(&mc);
        // Relay-join only in areas that actually participate: the relay's
        // purpose is to make the member area's tree span the attachment.
        let participates = self.area_has_host_members(mc);
        let mc_type = self.mc_types.get(&mc).copied().unwrap_or(McType::Symmetric);
        if cross_area && participates && !am_area_member {
            let actions = self.area_engine.local_join(mc, mc_type, Role::Receiver);
            self.execute(ctx, Level::Area, actions);
        } else if !cross_area && am_area_member && !host {
            let actions = self.area_engine.local_leave(mc);
            self.execute(ctx, Level::Area, actions);
        }
    }

    fn deliver_locally(&mut self, ctx: &mut Ctx<'_, HierMsg>, data: &HierData) {
        if self.host_member.contains(&data.mc) {
            ctx.counter(counters::DATA_DELIVERED).incr();
            *self.delivered.entry((data.mc, data.packet_id)).or_insert(0) += 1;
        }
    }

    fn area_tree_neighbors(&self, mc: McId, except: Option<NodeId>) -> Vec<(LinkId, NodeId)> {
        let Some(tree) = self.area_engine.installed(mc) else {
            return Vec::new();
        };
        tree.neighbors_in(self.me)
            .into_iter()
            .filter(|&n| Some(n) != except)
            .filter_map(|n| {
                self.intra_links
                    .iter()
                    .find(|&&(_, nb)| nb == n)
                    .map(|&(l, _)| (l, n))
            })
            .collect()
    }

    fn bb_tree_neighbors(&self, mc: McId, except: Option<NodeId>) -> Vec<(NodeId, u64)> {
        let Some(bb) = self.bb_engine.as_ref() else {
            return Vec::new();
        };
        let Some(tree) = bb.installed(mc) else {
            return Vec::new();
        };
        tree.neighbors_in(self.me)
            .into_iter()
            .filter(|&n| Some(n) != except)
            .filter_map(|n| self.bb_neighbors.iter().find(|&&(nb, _)| nb == n).copied())
            .collect()
    }

    fn forward_area_tree(
        &mut self,
        ctx: &mut Ctx<'_, HierMsg>,
        data: HierData,
        from: Option<NodeId>,
        and_backbone: bool,
    ) {
        self.deliver_locally(ctx, &data);
        for (link, n) in self.area_tree_neighbors(data.mc, from) {
            ctx.send(
                ActorId(n.0),
                self.config.per_hop,
                HierMsg::Data(HierData {
                    kind: HierDataKind::AreaTree { via: Some(link) },
                    ..data.clone()
                }),
            );
        }
        if and_backbone && self.is_attachment() {
            for (n, hops) in self.bb_tree_neighbors(data.mc, None) {
                ctx.send(
                    ActorId(n.0),
                    self.config.per_hop * hops,
                    HierMsg::Data(HierData {
                        kind: HierDataKind::BackboneHop { from: self.me },
                        ..data.clone()
                    }),
                );
            }
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_, HierMsg>, data: HierData) {
        match data.kind {
            HierDataKind::AreaTree { via } => {
                let from = via.and_then(|v| {
                    self.intra_links
                        .iter()
                        .find(|&&(l, _)| l == v)
                        .map(|&(_, n)| n)
                });
                // Attachments bridge area traffic onto the backbone. An
                // AreaTree packet reaching the attachment is necessarily
                // origin-area traffic: backbone crossings re-enter areas
                // *from* the attachment (which never receives its own
                // injection back — area trees are acyclic).
                let bridge = self.is_attachment();
                self.forward_area_tree(ctx, data, from, bridge);
            }
            HierDataKind::BackboneHop { from } => {
                // Relay along the backbone tree.
                for (n, hops) in self.bb_tree_neighbors(data.mc, Some(from)) {
                    ctx.send(
                        ActorId(n.0),
                        self.config.per_hop * hops,
                        HierMsg::Data(HierData {
                            kind: HierDataKind::BackboneHop { from: self.me },
                            ..data.clone()
                        }),
                    );
                }
                // Inject into the local area tree (we are this area's
                // attachment if we are on the backbone tree for the MC and
                // our area participates).
                if self.is_attachment() && self.area_engine.is_member(data.mc) {
                    let d = HierData {
                        kind: HierDataKind::AreaTree { via: None },
                        ..data
                    };
                    self.forward_area_tree(ctx, d, None, false);
                }
            }
        }
    }
}

impl Actor<HierMsg> for HierSwitch {
    fn handle(&mut self, ctx: &mut Ctx<'_, HierMsg>, env: Envelope<HierMsg>) {
        match env.msg {
            HierMsg::AreaPacket { packet, via } => {
                if !self.area_flooder.accept(packet.id) {
                    return;
                }
                for &(link, neighbor) in &self.intra_links {
                    if link == via {
                        continue;
                    }
                    ctx.send(
                        ActorId(neighbor.0),
                        self.config.per_hop,
                        HierMsg::AreaPacket {
                            packet: packet.clone(),
                            via: link,
                        },
                    );
                }
                ctx.counter(counters::AREA_LSAS).incr();
                let lsa = packet.payload;
                let mc = lsa.mc;
                self.mc_types.entry(mc).or_insert(lsa.mc_type);
                let actions = self.area_engine.on_mc_lsa(lsa);
                self.execute(ctx, Level::Area, actions);
                self.couple_up(ctx, mc);
            }
            HierMsg::BackbonePacket { packet, from } => {
                if !self.bb_flooder.accept(packet.id) {
                    return;
                }
                let relay = packet.clone();
                for &(neighbor, hops) in &self.bb_neighbors {
                    if neighbor == from {
                        continue;
                    }
                    ctx.send(
                        ActorId(neighbor.0),
                        self.config.per_hop * hops,
                        HierMsg::BackbonePacket {
                            packet: relay.clone(),
                            from: self.me,
                        },
                    );
                }
                ctx.counter(counters::BB_LSAS).incr();
                let lsa = packet.payload;
                let mc = lsa.mc;
                self.mc_types.entry(mc).or_insert(lsa.mc_type);
                if let Some(bb) = self.bb_engine.as_mut() {
                    let actions = bb.on_mc_lsa(lsa);
                    self.execute(ctx, Level::Backbone, actions);
                }
                self.couple_down(ctx, mc);
            }
            HierMsg::HostJoin { mc, mc_type, role } => {
                self.mc_types.insert(mc, mc_type);
                self.host_member.insert(mc);
                let actions = self.area_engine.local_join(mc, mc_type, role);
                self.execute(ctx, Level::Area, actions);
                self.couple_up(ctx, mc);
            }
            HierMsg::HostLeave { mc } => {
                self.host_member.remove(&mc);
                // Keep relay membership if the attachment still needs it.
                let actions = self.area_engine.local_leave(mc);
                self.execute(ctx, Level::Area, actions);
                self.couple_up(ctx, mc);
            }
            HierMsg::ComputationDone { level, mc } => match level {
                Level::Area => {
                    let image = Rc::clone(&self.area_net);
                    let actions = self.area_engine.on_computation_done(mc, &image);
                    self.execute(ctx, Level::Area, actions);
                    self.couple_up(ctx, mc);
                }
                Level::Backbone => {
                    let backbone = Rc::clone(&self.backbone);
                    if let Some(bb) = self.bb_engine.as_mut() {
                        let actions = bb.on_computation_done(mc, backbone.logical());
                        self.execute(ctx, Level::Backbone, actions);
                    }
                    self.couple_down(ctx, mc);
                }
            },
            HierMsg::SendData { mc, packet_id } => {
                let data = HierData {
                    mc,
                    packet_id,
                    origin: self.me,
                    kind: HierDataKind::AreaTree { via: None },
                };
                self.forward_area_tree(ctx, data, None, false);
                // The injection also rides toward the attachment through
                // the tree; the attachment bridges when it is hit. If we
                // *are* the attachment, bridge immediately.
                if self.is_attachment() {
                    let d = HierData {
                        mc,
                        packet_id,
                        origin: self.me,
                        kind: HierDataKind::AreaTree { via: None },
                    };
                    for (n, hops) in self.bb_tree_neighbors(d.mc, None) {
                        ctx.send(
                            ActorId(n.0),
                            self.config.per_hop * hops,
                            HierMsg::Data(HierData {
                                kind: HierDataKind::BackboneHop { from: self.me },
                                ..d.clone()
                            }),
                        );
                    }
                }
            }
            HierMsg::Data(data) => self.on_data(ctx, data),
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Builds a hierarchical simulation: one [`HierSwitch`] per node.
///
/// # Panics
///
/// Panics if some area has no border while `map` has multiple areas.
pub fn build_hier_sim(
    net: &Network,
    map: &AreaMap,
    config: DgmcConfig,
    algorithm: Rc<dyn McAlgorithm>,
) -> Simulation<HierMsg> {
    let backbone = Rc::new(Backbone::build(net, map));
    let borders = map.borders(net);
    // Designated attachment per area: the smallest border id; for a
    // single-area map every switch is its own "attachment" (unused).
    let mut attachments: BTreeMap<AreaId, NodeId> = BTreeMap::new();
    for area in map.area_ids() {
        let att = borders
            .iter()
            .copied()
            .find(|&b| map.area_of(b) == area)
            .unwrap_or_else(|| {
                assert_eq!(map.area_count(), 1, "{area} has no border switch");
                NodeId(0)
            });
        attachments.insert(area, att);
    }
    // Per-area subgraphs shared among the area's switches.
    let area_nets: BTreeMap<AreaId, Rc<Network>> = map
        .area_ids()
        .map(|area| (area, Rc::new(map.area_subgraph(net, area))))
        .collect();
    let mut sim = Simulation::new();
    for n in net.nodes() {
        let area = map.area_of(n);
        let sw = HierSwitch::new(
            n,
            net,
            map,
            Rc::clone(&area_nets[&area]),
            Rc::clone(&backbone),
            config,
            Rc::clone(&algorithm),
            &attachments,
        );
        let id = sim.add_actor(Box::new(sw));
        debug_assert_eq!(id.index(), n.index());
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_mctree::SphStrategy;
    use dgmc_topology::generate;

    fn grid_setup(k: usize) -> (Network, AreaMap, Simulation<HierMsg>) {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, k);
        let sim = build_hier_sim(
            &net,
            &map,
            DgmcConfig::computation_dominated(),
            Rc::new(SphStrategy::new()),
        );
        (net, map, sim)
    }

    #[test]
    fn builder_registers_one_actor_per_switch() {
        let (net, _map, sim) = grid_setup(2);
        assert_eq!(sim.actor_count(), net.len());
        for n in net.nodes() {
            let sw = sim.actor_as::<HierSwitch>(ActorId(n.0)).expect("typed");
            assert!(sw.backbone_engine().is_some() || !sw.is_attachment());
        }
    }

    #[test]
    fn exactly_one_attachment_per_area() {
        let (net, map, sim) = grid_setup(4);
        for area in map.area_ids() {
            let attachments: Vec<NodeId> = map
                .switches_in(area)
                .into_iter()
                .filter(|&s| {
                    sim.actor_as::<HierSwitch>(ActorId(s.0))
                        .unwrap()
                        .is_attachment()
                })
                .collect();
            assert_eq!(attachments.len(), 1, "{area}");
            // The attachment is a border switch.
            assert!(map.borders(&net).contains(&attachments[0]));
        }
    }

    #[test]
    fn interior_switches_have_no_backbone_engine() {
        let (net, map, sim) = grid_setup(2);
        let borders = map.borders(&net);
        for n in net.nodes() {
            let sw = sim.actor_as::<HierSwitch>(ActorId(n.0)).unwrap();
            assert_eq!(sw.backbone_engine().is_some(), borders.contains(&n));
        }
    }

    #[test]
    fn tunnel_hop_counts_match_expansion_paths() {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, 2);
        let backbone = Backbone::build(&net, &map);
        let sim = build_hier_sim(
            &net,
            &map,
            DgmcConfig::computation_dominated(),
            Rc::new(SphStrategy::new()),
        );
        for &b in map.borders(&net).iter() {
            let sw = sim.actor_as::<HierSwitch>(ActorId(b.0)).unwrap();
            for &(neighbor, hops) in &sw.bb_neighbors {
                let link = backbone
                    .logical()
                    .link_between(b, neighbor)
                    .expect("logical link");
                let path = backbone.expand(link.a, link.b).expect("expansion");
                assert_eq!(hops as usize, path.len() - 1);
            }
        }
    }
}
