//! Flood-scope accounting: the scalability argument for the hierarchy.
//!
//! Under flat D-GMC every advertisement floods all `n` switches. Under the
//! two-level hierarchy, an event inside an area floods only that area;
//! only when the *inter-area* part of a connection changes does the backbone
//! flood too. This module quantifies the reduction.

use crate::backbone::Backbone;
use crate::AreaMap;
use dgmc_topology::{Network, NodeId};

/// Flood reach of one membership event at `node`, in switches receiving the
/// advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodScope {
    /// Switches reached under flat D-GMC (always `n`).
    pub flat: usize,
    /// Switches reached under the hierarchy: the event's area, plus the
    /// backbone borders when the event changes the area's attachment
    /// (conservatively counted for cross-area connections).
    pub hierarchical: usize,
}

impl FloodScope {
    /// Reduction factor `flat / hierarchical`.
    pub fn reduction(&self) -> f64 {
        self.flat as f64 / self.hierarchical.max(1) as f64
    }
}

/// Scope of a membership event at `node` for a connection spanning
/// `member_areas_after` areas (including the event's own area).
pub fn membership_event_scope(
    net: &Network,
    map: &AreaMap,
    backbone: &Backbone,
    node: NodeId,
    cross_area: bool,
) -> FloodScope {
    let area = map.area_of(node);
    let area_size = map.switches_in(area).len();
    let backbone_size = if cross_area {
        // Borders hear about attachment changes over the logical network.
        backbone
            .logical()
            .nodes()
            .filter(|&n| backbone.logical().degree(n) > 0)
            .count()
    } else {
        0
    };
    FloodScope {
        flat: net.len(),
        hierarchical: area_size + backbone_size,
    }
}

/// Average flood scopes over all switches, for intra-area and cross-area
/// events respectively.
pub fn average_scopes(
    net: &Network,
    map: &AreaMap,
    backbone: &Backbone,
) -> (FloodScope, FloodScope) {
    let n = net.len().max(1);
    let mut intra = 0usize;
    let mut cross = 0usize;
    for node in net.nodes() {
        intra += membership_event_scope(net, map, backbone, node, false).hierarchical;
        cross += membership_event_scope(net, map, backbone, node, true).hierarchical;
    }
    (
        FloodScope {
            flat: net.len(),
            hierarchical: intra / n,
        },
        FloodScope {
            flat: net.len(),
            hierarchical: cross / n,
        },
    )
}

/// Per-switch state reduction: a flat switch stores topology for all `n`
/// switches; a hierarchical switch stores its area plus (if a border) the
/// backbone.
pub fn state_per_switch(map: &AreaMap, backbone: &Backbone, node: NodeId) -> usize {
    let area = map.area_of(node);
    let mut state = map.switches_in(area).len();
    if backbone.logical().degree(node) > 0 {
        state += backbone
            .logical()
            .nodes()
            .filter(|&n| backbone.logical().degree(n) > 0)
            .count();
    }
    state
}

/// Summary row used by the hierarchy experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeRow {
    /// Number of areas.
    pub areas: usize,
    /// Average intra-area event scope.
    pub intra_scope: usize,
    /// Average cross-area event scope.
    pub cross_scope: usize,
    /// Flat scope (n).
    pub flat_scope: usize,
    /// Average per-switch stored-topology size.
    pub avg_state: f64,
}

/// Sweeps area counts on one network.
pub fn scope_sweep(net: &Network, area_counts: &[usize]) -> Vec<ScopeRow> {
    area_counts
        .iter()
        .map(|&k| {
            let map = AreaMap::partition(net, k);
            let backbone = Backbone::build(net, &map);
            let (intra, cross) = average_scopes(net, &map, &backbone);
            let total_state: usize = net
                .nodes()
                .map(|n| state_per_switch(&map, &backbone, n))
                .sum();
            ScopeRow {
                areas: k,
                intra_scope: intra.hierarchical,
                cross_scope: cross.hierarchical,
                flat_scope: net.len(),
                avg_state: total_state as f64 / net.len() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn intra_area_events_flood_only_the_area() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        let bb = Backbone::build(&net, &map);
        let scope = membership_event_scope(&net, &map, &bb, NodeId(0), false);
        assert_eq!(scope.flat, 36);
        assert_eq!(
            scope.hierarchical,
            map.switches_in(map.area_of(NodeId(0))).len()
        );
        assert!(scope.reduction() > 1.5);
    }

    #[test]
    fn cross_area_events_add_the_backbone() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        let bb = Backbone::build(&net, &map);
        let intra = membership_event_scope(&net, &map, &bb, NodeId(0), false);
        let cross = membership_event_scope(&net, &map, &bb, NodeId(0), true);
        assert!(cross.hierarchical > intra.hierarchical);
        assert!(cross.hierarchical <= net.len() + net.len());
    }

    #[test]
    fn single_area_has_no_reduction() {
        let net = generate::ring(8);
        let map = AreaMap::partition(&net, 1);
        let bb = Backbone::build(&net, &map);
        let (intra, _) = average_scopes(&net, &map, &bb);
        assert_eq!(intra.hierarchical, 8);
        assert!((intra.reduction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_shows_monotone_intra_scope_shrink() {
        let net = generate::grid(8, 8);
        let rows = scope_sweep(&net, &[1, 2, 4, 8]);
        for pair in rows.windows(2) {
            assert!(
                pair[1].intra_scope <= pair[0].intra_scope,
                "more areas must not widen intra-area floods"
            );
        }
        assert_eq!(rows[0].intra_scope, 64);
        assert!(rows[3].intra_scope <= 16);
    }

    #[test]
    fn state_shrinks_for_interior_switches() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        let bb = Backbone::build(&net, &map);
        let interior = net
            .nodes()
            .find(|&n| bb.logical().degree(n) == 0)
            .expect("some interior switch");
        assert!(state_per_switch(&map, &bb, interior) < net.len());
    }
}
