//! The level-2 logical network over border switches.
//!
//! Backbone nodes are the border switches of the partition; backbone links
//! are (a) the physical inter-area links and (b) *logical* intra-area links
//! between border pairs of the same area, with the intra-area shortest-path
//! cost — the standard PNNI "complex node" summarization.

use crate::AreaMap;
use dgmc_topology::{spf, Network, NodeId};
use std::collections::BTreeMap;

/// The backbone: a logical [`Network`] in the *global* node-id space (only
/// border switches have links) plus the expansion table mapping logical
/// links back to physical intra-area paths.
#[derive(Debug, Clone)]
pub struct Backbone {
    logical: Network,
    /// (a, b) normalized -> physical node path a..b for logical links;
    /// physical inter-area links map to the trivial 2-node path.
    expansion: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl Backbone {
    /// Builds the backbone of `net` under `map`.
    ///
    /// # Panics
    ///
    /// Panics if an area's borders are not mutually reachable inside their
    /// area (the partition must produce internally connected areas).
    pub fn build(net: &Network, map: &AreaMap) -> Backbone {
        let borders = map.borders(net);
        let mut logical = Network::with_nodes(net.len());
        let mut expansion = BTreeMap::new();
        // Physical inter-area links.
        for link in net.up_links() {
            if map.area_of(link.a) != map.area_of(link.b) {
                logical
                    .add_link(link.a, link.b, link.cost)
                    .expect("unique inter-area links");
                expansion.insert((link.a, link.b), vec![link.a, link.b]);
            }
        }
        // Logical intra-area links between same-area border pairs.
        for area in map.area_ids() {
            let sub = map.area_subgraph(net, area);
            let area_borders: Vec<NodeId> = borders
                .iter()
                .copied()
                .filter(|&b| map.area_of(b) == area)
                .collect();
            for (i, &a) in area_borders.iter().enumerate() {
                if area_borders.len() <= i + 1 {
                    continue;
                }
                let tree = spf::shortest_path_tree(&sub, a);
                for &b in &area_borders[i + 1..] {
                    let cost = tree
                        .cost_to(b)
                        .unwrap_or_else(|| panic!("{area} borders {a} and {b} disconnected"));
                    let path = tree.path_to(b).expect("cost implies path");
                    if logical.link_between(a, b).is_none() {
                        logical.add_link(a, b, cost).expect("checked unique");
                        let key = if a < b { (a, b) } else { (b, a) };
                        expansion.insert(key, path);
                    }
                }
            }
        }
        Backbone { logical, expansion }
    }

    /// The logical network (global id space; only borders are linked).
    pub fn logical(&self) -> &Network {
        &self.logical
    }

    /// Number of logical links.
    pub fn logical_link_count(&self) -> usize {
        self.logical.up_links().count()
    }

    /// Expands a logical edge to its physical node path.
    ///
    /// Returns `None` for unknown edges.
    pub fn expand(&self, a: NodeId, b: NodeId) -> Option<&[NodeId]> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.expansion.get(&key).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn backbone_of_two_area_grid() {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, 2);
        let bb = Backbone::build(&net, &map);
        let borders = map.borders(&net);
        // Every border participates in at least one logical link.
        for &b in &borders {
            assert!(
                bb.logical().degree(b) > 0,
                "border {b} isolated in backbone"
            );
        }
        // Non-border switches are isolated in the logical network.
        for n in net.nodes() {
            if !borders.contains(&n) {
                assert_eq!(bb.logical().degree(n), 0);
            }
        }
    }

    #[test]
    fn logical_costs_match_intra_area_shortest_paths() {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, 2);
        let bb = Backbone::build(&net, &map);
        for link in bb.logical().up_links() {
            let path = bb.expand(link.a, link.b).expect("expansion exists");
            // Path endpoints match the logical edge (order may be reversed).
            let ends = (path[0], *path.last().unwrap());
            assert!(ends == (link.a, link.b) || ends == (link.b, link.a));
            // Path cost equals logical cost.
            let mut cost = 0;
            for w in path.windows(2) {
                cost += net.link_between(w[0], w[1]).unwrap().cost;
            }
            assert_eq!(cost, link.cost);
        }
    }

    #[test]
    fn backbone_is_connected_across_areas() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        let bb = Backbone::build(&net, &map);
        let borders: Vec<NodeId> = map.borders(&net).into_iter().collect();
        let tree = spf::shortest_path_tree(bb.logical(), borders[0]);
        for &b in &borders {
            assert!(tree.reaches(b), "border {b} unreachable in backbone");
        }
    }

    #[test]
    fn single_area_backbone_is_empty() {
        let net = generate::ring(6);
        let map = AreaMap::partition(&net, 1);
        let bb = Backbone::build(&net, &map);
        assert_eq!(bb.logical_link_count(), 0);
    }
}
