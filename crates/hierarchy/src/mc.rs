use crate::backbone::Backbone;
use crate::{AreaId, AreaMap};
use dgmc_mctree::{algorithms, McTopology};
use dgmc_topology::{Network, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Errors from hierarchical MC construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HierarchyError {
    /// A member's area has no border switch (isolated area with outside
    /// members).
    NoBorder(AreaId),
    /// A member is unreachable within its area subgraph.
    MemberUnreachable(NodeId),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::NoBorder(a) => write!(f, "{a} has members but no border switch"),
            HierarchyError::MemberUnreachable(n) => {
                write!(f, "member {n} unreachable inside its area")
            }
        }
    }
}

impl Error for HierarchyError {}

/// A hierarchically computed multipoint connection.
///
/// Construction (deterministic):
///
/// 1. group the members by area;
/// 2. per member area, pick the *attachment border* (the smallest border id
///    of the area) and build an intra-area Steiner tree over the members
///    plus the attachment border;
/// 3. build a backbone Steiner tree over the attachment borders on the
///    level-2 logical network;
/// 4. expand logical backbone edges to physical paths and take the union;
/// 5. extract a spanning tree of the union and prune non-member leaves.
///
/// The result is a flat [`McTopology`] installable by ordinary D-GMC
/// switches — the hierarchy changes who computes and how far LSAs flood
/// (see [`crate::scope`]), not the data plane.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalMc {
    topology: McTopology,
    member_areas: BTreeSet<AreaId>,
    attachments: BTreeMap<AreaId, NodeId>,
}

impl HierarchicalMc {
    /// Computes the hierarchical MC for `members`.
    ///
    /// # Errors
    ///
    /// See [`HierarchyError`].
    pub fn compute(
        net: &Network,
        map: &AreaMap,
        backbone: &Backbone,
        members: &BTreeSet<NodeId>,
    ) -> Result<HierarchicalMc, HierarchyError> {
        let mut by_area: BTreeMap<AreaId, BTreeSet<NodeId>> = BTreeMap::new();
        for &m in members {
            by_area.entry(map.area_of(m)).or_default().insert(m);
        }
        let member_areas: BTreeSet<AreaId> = by_area.keys().copied().collect();
        let borders = map.borders(net);
        let multi_area = member_areas.len() > 1;

        // Single-area connections never leave their area: plain flat tree.
        if !multi_area {
            let Some((&area, area_members)) = by_area.iter().next() else {
                return Ok(HierarchicalMc {
                    topology: McTopology::empty(),
                    member_areas,
                    attachments: BTreeMap::new(),
                });
            };
            let sub = map.area_subgraph(net, area);
            let tree = algorithms::takahashi_matsuyama(&sub, area_members);
            for &m in area_members {
                if !tree.touches(m) || tree.validate(&sub, area_members).is_err() {
                    return Err(HierarchyError::MemberUnreachable(m));
                }
            }
            return Ok(HierarchicalMc {
                topology: tree,
                member_areas,
                attachments: BTreeMap::new(),
            });
        }

        // 2. Per-area trees over members + attachment border.
        let mut union: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut attachments = BTreeMap::new();
        for (&area, area_members) in &by_area {
            let sub = map.area_subgraph(net, area);
            // Attachment border: nearest to the area's members (sum of
            // intra-area shortest-path costs), ties to the smaller id.
            let sources: Vec<NodeId> = area_members.iter().copied().collect();
            let forest = dgmc_topology::spf::shortest_path_forest(&sub, &sources);
            let attachment = borders
                .iter()
                .copied()
                .filter(|&b| map.area_of(b) == area)
                .filter_map(|b| forest.cost_to(b).map(|c| (c, b)))
                .min()
                .map(|(_, b)| b)
                .or_else(|| borders.iter().copied().find(|&b| map.area_of(b) == area))
                .ok_or(HierarchyError::NoBorder(area))?;
            attachments.insert(area, attachment);
            let mut terminals = area_members.clone();
            terminals.insert(attachment);
            let tree = algorithms::takahashi_matsuyama(&sub, &terminals);
            if tree.validate(&sub, &terminals).is_err() {
                let missing = terminals
                    .iter()
                    .copied()
                    .find(|&t| !tree.touches(t))
                    .unwrap_or(attachment);
                return Err(HierarchyError::MemberUnreachable(missing));
            }
            union.extend(tree.edges());
        }

        // 3. Backbone tree over attachment borders.
        let attach_set: BTreeSet<NodeId> = attachments.values().copied().collect();
        let bb_tree = algorithms::takahashi_matsuyama(backbone.logical(), &attach_set);
        if bb_tree.validate(backbone.logical(), &attach_set).is_err() {
            let missing = attach_set
                .iter()
                .copied()
                .find(|&t| !bb_tree.touches(t))
                .expect("some terminal unspanned");
            return Err(HierarchyError::MemberUnreachable(missing));
        }

        // 4. Expand logical edges to physical paths.
        for (a, b) in bb_tree.edges() {
            let path = backbone.expand(a, b).expect("backbone edges expand");
            for w in path.windows(2) {
                let e = if w[0] < w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                union.insert(e);
            }
        }

        // 5. The union may contain cycles (area trees and expanded paths can
        // overlap); extract a deterministic spanning tree and prune.
        let topology = spanning_tree_of(union, members.clone(), net);
        Ok(HierarchicalMc {
            topology,
            member_areas,
            attachments,
        })
    }

    /// The installable flat topology.
    pub fn topology(&self) -> &McTopology {
        &self.topology
    }

    /// Areas containing members.
    pub fn member_areas(&self) -> &BTreeSet<AreaId> {
        &self.member_areas
    }

    /// The attachment border chosen per member area (empty for single-area
    /// connections).
    pub fn attachments(&self) -> &BTreeMap<AreaId, NodeId> {
        &self.attachments
    }
}

/// Deterministic spanning tree of an edge set (Kruskal by cost then ids),
/// pruned to the given terminals.
fn spanning_tree_of(
    edges: BTreeSet<(NodeId, NodeId)>,
    terminals: BTreeSet<NodeId>,
    net: &Network,
) -> McTopology {
    let mut weighted: Vec<(u64, NodeId, NodeId)> = edges
        .into_iter()
        .map(|(a, b)| {
            let cost = net
                .link_between(a, b)
                .map(|l| l.cost)
                .unwrap_or(u64::MAX / 2);
            (cost, a, b)
        })
        .collect();
    weighted.sort();
    let mut index: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &(_, a, b) in &weighted {
        let next = index.len();
        index.entry(a).or_insert(next);
        let next = index.len();
        index.entry(b).or_insert(next);
    }
    let mut uf = dgmc_topology::unionfind::UnionFind::new(index.len());
    let mut tree = McTopology::new(terminals);
    for (_, a, b) in weighted {
        if uf.union(index[&a], index[&b]) {
            tree.insert_edge(a, b);
        }
    }
    tree.prune_non_terminal_leaves();
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    fn setup(k: usize) -> (Network, AreaMap, Backbone) {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, k);
        let bb = Backbone::build(&net, &map);
        (net, map, bb)
    }

    fn members(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn cross_area_mc_spans_all_members() {
        let (net, map, bb) = setup(4);
        let want = members(&[0, 5, 30, 35]); // corners, different areas
        let mc = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
        let tree = mc.topology();
        assert_eq!(tree.validate(&net, &want), Ok(()));
        assert!(mc.member_areas().len() >= 2);
        assert_eq!(mc.attachments().len(), mc.member_areas().len());
    }

    #[test]
    fn single_area_mc_stays_inside_its_area() {
        let (net, map, bb) = setup(4);
        // Pick two members from the same area.
        let area0 = map.switches_in(AreaId(0));
        let want: BTreeSet<NodeId> = area0.iter().copied().take(2).collect();
        let mc = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
        assert!(mc.attachments().is_empty(), "no backbone involvement");
        for (a, b) in mc.topology().edges() {
            assert_eq!(map.area_of(a), AreaId(0));
            assert_eq!(map.area_of(b), AreaId(0));
        }
        assert_eq!(mc.topology().validate(&net, &want), Ok(()));
    }

    #[test]
    fn empty_membership_is_empty() {
        let (net, map, bb) = setup(2);
        let mc = HierarchicalMc::compute(&net, &map, &bb, &BTreeSet::new()).unwrap();
        assert!(mc.topology().is_empty());
    }

    #[test]
    fn computation_is_deterministic() {
        let (net, map, bb) = setup(3);
        let want = members(&[0, 17, 35]);
        let a = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
        let b = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_cost_is_close_to_flat() {
        // Summarization costs something, but the tree should stay within a
        // small factor of the flat Steiner heuristic.
        let (net, map, bb) = setup(4);
        let want = members(&[0, 5, 30, 35, 14, 21]);
        let hier = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
        let flat = algorithms::takahashi_matsuyama(&net, &want);
        let hc = hier.topology().total_cost(&net).unwrap() as f64;
        let fc = flat.total_cost(&net).unwrap() as f64;
        assert!(hc / fc <= 2.0, "hierarchical {hc} vs flat {fc}");
        assert!(
            hc >= fc * 0.99,
            "hierarchical cannot beat the flat heuristic by magic"
        );
    }

    #[test]
    fn random_member_sets_always_validate() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (net, map, bb) = setup(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut all: Vec<NodeId> = net.nodes().collect();
            all.shuffle(&mut rng);
            let want: BTreeSet<NodeId> = all.into_iter().take(7).collect();
            let mc = HierarchicalMc::compute(&net, &map, &bb, &want).unwrap();
            assert_eq!(mc.topology().validate(&net, &want), Ok(()));
        }
    }
}
