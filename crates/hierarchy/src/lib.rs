//! Two-level hierarchical extension of D-GMC.
//!
//! The paper limits flat D-GMC to a single administrative domain of a few
//! hundred switches and notes that "scalability can be addressed by
//! introducing a routing hierarchy into large networks ... the combination
//! of an LSR protocol and routing hierarchy is under consideration for the
//! ATM PNNI standard. In this paper, we present the 'basic' D-GMC protocol;
//! its extension to hierarchical networks is part of our ongoing work."
//!
//! This crate implements that extension at the topology/analysis level:
//!
//! * [`AreaMap`] — a partition of the switches into areas, with border
//!   switches identified ([`partition`]),
//! * [`backbone`] — the level-2 logical network: border switches joined by
//!   inter-area physical links and intra-area *logical* links whose cost is
//!   the intra-area shortest path,
//! * [`HierarchicalMc`] — hierarchical MC topology computation: per-area
//!   trees over member areas, a backbone tree stitching their attachment
//!   borders, logical edges expanded back to physical paths,
//! * [`scope`] — flood-scope accounting showing the scalability win: an
//!   intra-area event floods `|area|` switches instead of `n` (plus the
//!   backbone when the inter-area topology is affected).
//!
//! Each area runs the *unchanged* flat D-GMC protocol internally (validated
//! in the integration tests by running the flat DES on an extracted area),
//! so the signaling machinery of [`dgmc_core`] carries over verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backbone;
pub mod partition;
pub mod scope;
pub mod switch;

mod mc;

pub use mc::{HierarchicalMc, HierarchyError};
pub use partition::{AreaId, AreaMap};
