//! Area partitioning of a flat network.

use dgmc_topology::{Network, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a routing area (an OSPF area / PNNI peer group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AreaId(pub u16);

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area{}", self.0)
    }
}

/// A partition of the network's switches into contiguous areas.
///
/// # Examples
///
/// ```
/// use dgmc_hierarchy::AreaMap;
/// use dgmc_topology::generate;
///
/// let net = generate::grid(4, 4);
/// let map = AreaMap::partition(&net, 4);
/// assert_eq!(map.area_count(), 4);
/// assert!(map.borders(&net).len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaMap {
    area_of: Vec<AreaId>,
    n_areas: usize,
}

impl AreaMap {
    /// Partitions `net` into `k` contiguous, roughly balanced areas by
    /// multi-source BFS from `k` spread-out seeds (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > net.len()` or `net` is disconnected.
    pub fn partition(net: &Network, k: usize) -> AreaMap {
        assert!(k > 0, "need at least one area");
        assert!(k <= net.len(), "more areas than switches");
        assert!(
            k <= usize::from(u16::MAX) + 1,
            "area ids are u16: at most 65536 areas"
        );
        assert!(net.is_connected(), "hierarchy requires a connected network");
        // Seed selection: farthest-point traversal by hops from node 0.
        let mut seeds = vec![NodeId(0)];
        while seeds.len() < k {
            let mut best: Option<(u32, NodeId)> = None;
            for cand in net.nodes() {
                if seeds.contains(&cand) {
                    continue;
                }
                let d = seeds
                    .iter()
                    .map(|&s| dgmc_topology::spf::hop_distances(net, s)[cand.index()].unwrap_or(0))
                    .min()
                    .unwrap_or(0);
                if best.is_none_or(|(bd, bn)| d > bd || (d == bd && cand < bn)) {
                    best = Some((d, cand));
                }
            }
            seeds.push(best.expect("connected network has candidates").1);
        }
        // Balanced multi-source BFS: grow areas one ring at a time, smaller
        // areas first, deterministic order.
        let mut area_of: Vec<Option<AreaId>> = vec![None; net.len()];
        let mut frontiers: Vec<Vec<NodeId>> = Vec::new();
        for (i, &s) in seeds.iter().enumerate() {
            area_of[s.index()] = Some(AreaId(u16::try_from(i).expect("checked: k <= 65536")));
            frontiers.push(vec![s]);
        }
        let mut sizes = vec![1usize; k];
        while area_of.iter().any(Option::is_none) {
            // Expand the currently smallest area with a non-empty frontier.
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by_key(|&a| (sizes[a], a));
            let mut progressed = false;
            for a in order {
                if frontiers[a].is_empty() {
                    continue;
                }
                let mut next = Vec::new();
                for &u in &frontiers[a] {
                    for (v, _) in net.neighbors(u) {
                        if area_of[v.index()].is_none() {
                            area_of[v.index()] =
                                Some(AreaId(u16::try_from(a).expect("checked: k <= 65536")));
                            sizes[a] += 1;
                            next.push(v);
                        }
                    }
                }
                frontiers[a] = next;
                if sizes.iter().sum::<usize>() >= net.len() {
                    break;
                }
                progressed = true;
                break; // one ring for one area per outer iteration
            }
            if !progressed && area_of.iter().any(Option::is_none) {
                // All frontiers empty but nodes remain (can't happen on a
                // connected graph, kept as a defensive break).
                for slot in area_of.iter_mut() {
                    if slot.is_none() {
                        *slot = Some(AreaId(0));
                    }
                }
            }
        }
        AreaMap {
            area_of: area_of.into_iter().map(|a| a.expect("assigned")).collect(),
            n_areas: k,
        }
    }

    /// Builds a map from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is empty or has gaps in the area ids.
    pub fn from_assignment(area_of: Vec<AreaId>) -> AreaMap {
        assert!(!area_of.is_empty(), "empty assignment");
        let n_areas = area_of.iter().map(|a| a.0 as usize + 1).max().unwrap_or(0);
        for a in 0..n_areas {
            assert!(
                area_of.iter().any(|x| x.0 as usize == a),
                "area {a} has no switches"
            );
        }
        AreaMap { area_of, n_areas }
    }

    /// The area of switch `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn area_of(&self, n: NodeId) -> AreaId {
        self.area_of[n.index()]
    }

    /// Number of areas.
    pub fn area_count(&self) -> usize {
        self.n_areas
    }

    /// All area ids, `0..area_count()`, as typed [`AreaId`]s. The checked
    /// conversion lives here so callers never cast `area_count()` down to
    /// `u16` themselves.
    pub fn area_ids(&self) -> impl Iterator<Item = AreaId> {
        (0..self.n_areas)
            .map(|a| AreaId(u16::try_from(a).expect("area ids fit u16 by construction")))
    }

    /// Number of switches the map covers.
    pub fn len(&self) -> usize {
        self.area_of.len()
    }

    /// Returns `true` if the map covers no switches.
    pub fn is_empty(&self) -> bool {
        self.area_of.is_empty()
    }

    /// All switches of `area`, in id order.
    pub fn switches_in(&self, area: AreaId) -> Vec<NodeId> {
        self.area_of
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == area)
            .map(|(i, _)| NodeId(u32::try_from(i).expect("switch ids fit u32")))
            .collect()
    }

    /// Switches with a neighbor in a different area, given the network.
    pub fn borders(&self, net: &Network) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for link in net.up_links() {
            if self.area_of(link.a) != self.area_of(link.b) {
                out.insert(link.a);
                out.insert(link.b);
            }
        }
        out
    }

    /// The subgraph induced by `area`: same node ids, only intra-area links
    /// up. Out-of-area nodes remain as isolated placeholders so global
    /// `NodeId`s (and vector timestamps) stay valid.
    pub fn area_subgraph(&self, net: &Network, area: AreaId) -> Network {
        let mut sub = Network::with_nodes(net.len());
        for link in net.up_links() {
            if self.area_of(link.a) == area && self.area_of(link.b) == area {
                sub.add_link(link.a, link.b, link.cost)
                    .expect("links unique in source network");
            }
        }
        sub
    }

    /// Checks that every area is internally connected on `net`.
    pub fn areas_connected(&self, net: &Network) -> bool {
        self.area_ids().all(|area| {
            let sub = self.area_subgraph(net, area);
            let members = self.switches_in(area);
            let Some(&first) = members.first() else {
                return true;
            };
            let hops = dgmc_topology::spf::hop_distances(&sub, first);
            members.iter().all(|m| hops[m.index()].is_some())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn partition_covers_and_balances() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        assert_eq!(map.len(), 36);
        assert_eq!(map.area_count(), 4);
        for a in 0..4u16 {
            let size = map.switches_in(AreaId(a)).len();
            assert!((4..=16).contains(&size), "area {a} size {size}");
        }
    }

    #[test]
    fn area_ids_cover_every_area_in_order() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        let ids: Vec<AreaId> = map.area_ids().collect();
        assert_eq!(ids, vec![AreaId(0), AreaId(1), AreaId(2), AreaId(3)]);
    }

    #[test]
    fn partition_is_deterministic() {
        let net = generate::grid(5, 5);
        assert_eq!(AreaMap::partition(&net, 3), AreaMap::partition(&net, 3));
    }

    #[test]
    fn areas_are_contiguous() {
        let net = generate::grid(6, 6);
        let map = AreaMap::partition(&net, 4);
        assert!(map.areas_connected(&net));
    }

    #[test]
    fn borders_touch_inter_area_links() {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, 2);
        let borders = map.borders(&net);
        assert!(!borders.is_empty());
        for &b in &borders {
            let has_foreign = net
                .neighbors(b)
                .any(|(v, _)| map.area_of(v) != map.area_of(b));
            assert!(has_foreign);
        }
    }

    #[test]
    fn area_subgraph_keeps_global_ids() {
        let net = generate::grid(4, 4);
        let map = AreaMap::partition(&net, 2);
        let sub = map.area_subgraph(&net, AreaId(0));
        assert_eq!(sub.len(), net.len(), "global id space preserved");
        for link in sub.up_links() {
            assert_eq!(map.area_of(link.a), AreaId(0));
            assert_eq!(map.area_of(link.b), AreaId(0));
        }
    }

    #[test]
    fn explicit_assignment_round_trips() {
        let assignment = vec![AreaId(0), AreaId(0), AreaId(1), AreaId(1)];
        let map = AreaMap::from_assignment(assignment.clone());
        assert_eq!(map.area_count(), 2);
        assert_eq!(map.area_of(NodeId(2)), AreaId(1));
        assert_eq!(map.switches_in(AreaId(0)), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "no switches")]
    fn gapped_assignment_panics() {
        AreaMap::from_assignment(vec![AreaId(0), AreaId(2)]);
    }

    #[test]
    fn single_area_is_the_flat_case() {
        let net = generate::ring(5);
        let map = AreaMap::partition(&net, 1);
        assert!(map.borders(&net).is_empty());
        assert_eq!(map.switches_in(AreaId(0)).len(), 5);
    }
}
