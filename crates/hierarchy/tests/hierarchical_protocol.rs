//! Integration: the hierarchy composes with the unchanged flat protocol.

use dgmc_core::switch::{build_dgmc_sim, DgmcConfig, SwitchMsg};
use dgmc_core::{convergence, McId, McType, Role};
use dgmc_des::{ActorId, SimDuration};
use dgmc_hierarchy::backbone::Backbone;
use dgmc_hierarchy::{AreaId, AreaMap, HierarchicalMc};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, NodeId};
use std::collections::BTreeSet;
use std::rc::Rc;

/// Each area is a complete flat D-GMC domain: running the ordinary DES on
/// the area subgraph converges exactly as on any flat network.
#[test]
fn flat_protocol_runs_unchanged_inside_an_area() {
    let net = generate::grid(6, 6);
    let map = AreaMap::partition(&net, 4);
    let area = AreaId(0);
    let sub = map.area_subgraph(&net, area);
    let members: Vec<NodeId> = map.switches_in(area).into_iter().take(3).collect();
    let mut sim = build_dgmc_sim(
        &sub,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    for (i, m) in members.iter().enumerate() {
        sim.inject(
            ActorId(m.0),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc: McId(1),
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    // Note: out-of-area switches are isolated placeholder nodes in the
    // subgraph; floods never reach them, so consensus is checked among the
    // area's switches (the others never allocate state... they are
    // unreachable, so check_consensus would flag PartialState; inspect the
    // area switches directly instead).
    let reference = sim
        .actor_as::<dgmc_core::switch::DgmcSwitch>(ActorId(members[0].0))
        .unwrap()
        .engine()
        .installed(McId(1))
        .cloned()
        .expect("tree installed");
    for s in map.switches_in(area) {
        let sw = sim
            .actor_as::<dgmc_core::switch::DgmcSwitch>(ActorId(s.0))
            .unwrap();
        assert_eq!(
            sw.engine().installed(McId(1)),
            Some(&reference),
            "area switch {s} disagrees"
        );
    }
    let want: BTreeSet<NodeId> = members.iter().copied().collect();
    assert_eq!(reference.validate(&sub, &want), Ok(()));
}

/// A hierarchically computed topology is a perfectly ordinary proposal: it
/// validates on the flat network and tree-floods data to every member.
#[test]
fn hierarchical_tree_carries_data_end_to_end() {
    let net = generate::grid(6, 6);
    let map = AreaMap::partition(&net, 4);
    let bb = Backbone::build(&net, &map);
    let members: BTreeSet<NodeId> = [NodeId(0), NodeId(5), NodeId(30), NodeId(35)].into();
    let mc = HierarchicalMc::compute(&net, &map, &bb, &members).unwrap();
    let tree = mc.topology().clone();
    assert_eq!(tree.validate(&net, &members), Ok(()));

    // Walk the tree from one member: every member is reached (tree-flood
    // data-plane equivalence without spinning up the whole DES).
    let reached = tree.hops_from(NodeId(0));
    for &m in &members {
        assert!(reached.contains_key(&m), "member {m} not reached");
    }
}

/// End-to-end on the real DES: install memberships via the flat protocol on
/// the full network, then verify the hierarchical computation spans the same
/// member set with bounded extra cost.
#[test]
fn hierarchy_matches_flat_protocol_membership() {
    let net = generate::grid(6, 6);
    let map = AreaMap::partition(&net, 4);
    let bb = Backbone::build(&net, &map);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let joiners = [0u32, 5, 30, 35, 14];
    for (i, j) in joiners.into_iter().enumerate() {
        sim.inject(
            ActorId(j),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc: McId(1),
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    let consensus = convergence::check_consensus(&sim, McId(1)).unwrap();
    let members: BTreeSet<NodeId> = consensus.members.keys().copied().collect();
    let flat_tree = consensus.topology.unwrap();

    let hier = HierarchicalMc::compute(&net, &map, &bb, &members).unwrap();
    assert_eq!(hier.topology().validate(&net, &members), Ok(()));
    let hc = hier.topology().total_cost(&net).unwrap() as f64;
    let fc = flat_tree.total_cost(&net).unwrap() as f64;
    assert!(hc <= 2.0 * fc, "hierarchical {hc} vs flat {fc}");
}
