//! End-to-end tests of the hierarchical signaling layer: scoped flooding,
//! level coupling at attachments, cross-area convergence and data delivery.

use dgmc_core::switch::DgmcConfig;
use dgmc_core::{McId, McType, Role};
use dgmc_des::{ActorId, RunOutcome, SimDuration, Simulation};
use dgmc_hierarchy::switch::{build_hier_sim, counters, HierMsg, HierSwitch};
use dgmc_hierarchy::{AreaId, AreaMap};
use dgmc_mctree::SphStrategy;
use dgmc_topology::{generate, Network, NodeId};
use std::rc::Rc;

const MC: McId = McId(1);

fn setup(k: usize) -> (Network, AreaMap, Simulation<HierMsg>) {
    let net = generate::grid(6, 6);
    let map = AreaMap::partition(&net, k);
    let sim = build_hier_sim(
        &net,
        &map,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    (net, map, sim)
}

fn join(sim: &mut Simulation<HierMsg>, node: NodeId, delay_ms: u64) {
    sim.inject(
        ActorId(node.0),
        SimDuration::millis(delay_ms),
        HierMsg::HostJoin {
            mc: MC,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
}

fn switch(sim: &Simulation<HierMsg>, n: NodeId) -> &HierSwitch {
    sim.actor_as::<HierSwitch>(ActorId(n.0))
        .expect("HierSwitch")
}

/// Area-level consensus among the switches of one area.
fn area_consensus(sim: &Simulation<HierMsg>, map: &AreaMap, area: AreaId) -> bool {
    let switches = map.switches_in(area);
    let reference = switch(sim, switches[0])
        .area_engine()
        .state(MC)
        .map(|st| (st.installed.clone(), st.members.clone(), st.c.clone()));
    switches.iter().all(|&s| {
        let st = switch(sim, s)
            .area_engine()
            .state(MC)
            .map(|st| (st.installed.clone(), st.members.clone(), st.c.clone()));
        st == reference
    })
}

#[test]
fn intra_area_event_floods_only_its_area() {
    let (_net, map, mut sim) = setup(4);
    // First member: floods the area and — once, inherently — attaches the
    // area on the backbone so other areas can discover cross-area overlap.
    let first = map.switches_in(AreaId(0))[1];
    join(&mut sim, first, 0);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let bb_after_first = sim.counter_value(counters::BB_LSAS);
    assert!(bb_after_first > 0, "first member attaches the area");
    let area_after_first = sim.counter_value(counters::AREA_LSAS);

    // Second member of the same area: a pure intra-area event. The
    // backbone hears NOTHING; the area flood is bounded by the area size.
    let second = map.switches_in(AreaId(0))[2];
    join(&mut sim, second, 50);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    assert_eq!(
        sim.counter_value(counters::BB_LSAS),
        bb_after_first,
        "intra-area events must not touch the backbone"
    );
    let area_size = map.switches_in(AreaId(0)).len() as u64;
    let delta = sim.counter_value(counters::AREA_LSAS) - area_after_first;
    assert!(delta >= area_size - 1, "flood reaches the area");
    assert!(
        delta <= 2 * (area_size - 1),
        "event + proposal floods stay inside the area: {delta}"
    );
    // Switches in other areas never allocated area-level state.
    for other in map.switches_in(AreaId(2)) {
        assert!(switch(&sim, other).area_engine().state(MC).is_none());
    }
}

#[test]
fn cross_area_connection_couples_levels() {
    let (_net, map, mut sim) = setup(4);
    let a_member = map.switches_in(AreaId(0))[1];
    let b_member = map.switches_in(AreaId(3))[1];
    join(&mut sim, a_member, 0);
    join(&mut sim, b_member, 5);
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);

    // Backbone instance exists and spans two attachment borders.
    assert!(sim.counter_value(counters::BB_LSAS) > 0);
    let attachment_a = map
        .switches_in(AreaId(0))
        .into_iter()
        .find(|&s| switch(&sim, s).is_attachment())
        .expect("area 0 has an attachment");
    let bb = switch(&sim, attachment_a)
        .backbone_engine()
        .expect("attachment is a border");
    let bb_state = bb.state(MC).expect("backbone connection exists");
    assert_eq!(bb_state.members.len(), 2, "two areas attached");
    // Down-coupling: the attachment joined its own area as a relay.
    assert!(switch(&sim, attachment_a).area_engine().is_member(MC));
    // Both member areas reached internal consensus.
    assert!(area_consensus(&sim, &map, AreaId(0)));
    assert!(area_consensus(&sim, &map, AreaId(3)));
    // Uninvolved areas still know nothing at the area level.
    for s in map.switches_in(AreaId(1)) {
        assert!(switch(&sim, s).area_engine().state(MC).is_none());
    }
}

#[test]
fn cross_area_data_reaches_all_members_exactly_once() {
    let (_net, map, mut sim) = setup(4);
    let members: Vec<NodeId> = vec![
        map.switches_in(AreaId(0))[1],
        map.switches_in(AreaId(0))[2],
        map.switches_in(AreaId(3))[1],
    ];
    for (i, &m) in members.iter().enumerate() {
        join(&mut sim, m, 5 * i as u64);
    }
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    sim.inject(
        ActorId(members[0].0),
        SimDuration::millis(100),
        HierMsg::SendData {
            mc: MC,
            packet_id: 7,
        },
    );
    sim.run_to_quiescence();
    for &m in &members {
        assert_eq!(
            switch(&sim, m).delivered_copies(MC, 7),
            1,
            "member {m} must get exactly one copy"
        );
    }
    // No stray deliveries anywhere else.
    let total = sim.counter_value(counters::DATA_DELIVERED);
    assert_eq!(total, members.len() as u64);
}

#[test]
fn leave_collapses_backbone_membership() {
    let (_net, map, mut sim) = setup(4);
    let a_member = map.switches_in(AreaId(0))[1];
    let b_member = map.switches_in(AreaId(3))[1];
    join(&mut sim, a_member, 0);
    join(&mut sim, b_member, 5);
    sim.run_to_quiescence();
    // Area 3's member leaves; the backbone connection must collapse to one
    // attachment and area 3 must forget the MC entirely.
    sim.inject(
        ActorId(b_member.0),
        SimDuration::millis(50),
        HierMsg::HostLeave { mc: MC },
    );
    assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
    let attachment_a = map
        .switches_in(AreaId(0))
        .into_iter()
        .find(|&s| switch(&sim, s).is_attachment())
        .unwrap();
    let bb_members = switch(&sim, attachment_a)
        .backbone_engine()
        .unwrap()
        .state(MC)
        .map(|st| st.members.len())
        .unwrap_or(0);
    assert_eq!(bb_members, 1, "only area 0 remains attached");
    // Area 0 keeps a working single-area connection.
    assert!(area_consensus(&sim, &map, AreaId(0)));
    assert!(switch(&sim, a_member).area_engine().is_member(MC));
}

#[test]
fn flood_scope_is_much_smaller_than_flat() {
    // The operational counterpart of scope::membership_event_scope: at 4
    // areas on 36 switches, intra-area joins generate LSA receptions
    // bounded by the area size, not the network size.
    let (net, map, mut sim) = setup(4);
    let member_a = map.switches_in(AreaId(1))[0];
    let member_b = map.switches_in(AreaId(1))[1];
    join(&mut sim, member_a, 0);
    join(&mut sim, member_b, 5);
    sim.run_to_quiescence();
    let receptions = sim.counter_value(counters::AREA_LSAS);
    let area_size = map.switches_in(AreaId(1)).len() as u64;
    let borders = map.borders(&net).len() as u64;
    // Two events, each flooding at most (area - 1) switches, plus at most
    // one triggered proposal each — versus 2 * (n - 1) = 70 under flat
    // D-GMC.
    assert!(
        receptions <= 4 * (area_size - 1),
        "{receptions} receptions vs area of {area_size}"
    );
    assert!(receptions < 2 * (net.len() as u64 - 1), "beats flat scope");
    // The backbone heard about the area attaching (first member only),
    // bounded by the border population.
    assert!(sim.counter_value(counters::BB_LSAS) <= 2 * borders);
}

#[test]
fn randomized_multi_area_churn_converges() {
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    for seed in 0..6u64 {
        let (net, map, mut sim) = setup(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let all: Vec<NodeId> = net.nodes().collect();
        // Random joins across areas, well separated.
        let mut members: Vec<NodeId> = Vec::new();
        for i in 0..6 {
            let &m = all.choose(&mut rng).unwrap();
            if members.contains(&m) {
                continue;
            }
            members.push(m);
            join(&mut sim, m, 20 * i as u64);
        }
        assert_eq!(
            sim.run_to_quiescence(),
            RunOutcome::Quiescent,
            "seed {seed}"
        );
        // Random leaves for half of them.
        let mut leavers = members.clone();
        leavers.shuffle(&mut rng);
        leavers.truncate(members.len() / 2);
        for (i, &l) in leavers.iter().enumerate() {
            sim.inject(
                ActorId(l.0),
                SimDuration::millis(500 + 20 * i as u64),
                HierMsg::HostLeave { mc: MC },
            );
        }
        assert_eq!(
            sim.run_to_quiescence(),
            RunOutcome::Quiescent,
            "seed {seed}"
        );
        let remaining: Vec<NodeId> = members
            .into_iter()
            .filter(|m| !leavers.contains(m))
            .collect();
        // Every member area reaches internal consensus and data flows from
        // the first remaining member to all others exactly once.
        let member_areas: std::collections::BTreeSet<AreaId> =
            remaining.iter().map(|&m| map.area_of(m)).collect();
        for &a in &member_areas {
            assert!(area_consensus(&sim, &map, a), "seed {seed} area {a}");
        }
        if let Some(&first) = remaining.first() {
            let pid = 1000 + seed;
            sim.inject(
                ActorId(first.0),
                SimDuration::millis(2000),
                HierMsg::SendData {
                    mc: MC,
                    packet_id: pid,
                },
            );
            sim.run_to_quiescence();
            for &m in &remaining {
                assert_eq!(
                    switch(&sim, m).delivered_copies(MC, pid),
                    1,
                    "seed {seed} member {m} (rng {})",
                    rng.gen::<u8>()
                );
            }
        }
    }
}
