//! Property-based tests of the LSR substrate over random networks.

use dgmc_des::SimDuration;
use dgmc_lsr::actor::{build_lsr_sim, counters, inject_link_event};
use dgmc_lsr::lsa::RouterLsa;
use dgmc_lsr::{Lsdb, RoutingTable};
use dgmc_topology::{generate, Network, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_net() -> impl Strategy<Value = Network> {
    (5usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::waxman(&mut rng, n, &generate::WaxmanParams::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A full LSDB reconstructs the ground-truth network exactly (same
    /// links, same costs, same states).
    #[test]
    fn full_lsdb_reconstructs_ground_truth(net in arb_net()) {
        let mut db = Lsdb::new(net.len());
        for n in net.nodes() {
            db.install(RouterLsa::describe(&net, n, 1));
        }
        let image = db.local_image();
        prop_assert_eq!(image.up_links().count(), net.up_links().count());
        for l in net.up_links() {
            let il = image.link_between(l.a, l.b).expect("present");
            prop_assert_eq!(il.cost, l.cost);
        }
    }

    /// A flooded advertisement is accepted exactly once per switch still
    /// reachable from the detector (the failed link may be a bridge, in
    /// which case the far side legitimately misses the flood), and the
    /// duplicate count is bounded by 2|E|.
    #[test]
    fn flooding_reaches_everyone_exactly_once(net in arb_net()) {
        let mut sim = build_lsr_sim(&net, SimDuration::micros(10));
        let victim = *net.up_links().map(|l| &l.id).next().expect("has links");
        inject_link_event(&mut sim, &net, victim, false, SimDuration::ZERO);
        sim.run_to_quiescence();
        prop_assert_eq!(sim.counter_value(counters::FLOODS_ORIGINATED), 1);
        let mut degraded = net.clone();
        degraded.set_link_state(victim, dgmc_topology::LinkState::Down).unwrap();
        let detector = net.link(victim).unwrap().a;
        let reachable = dgmc_topology::spf::hop_distances(&degraded, detector)
            .into_iter()
            .flatten()
            .count();
        prop_assert_eq!(
            sim.counter_value(counters::PACKETS_ACCEPTED),
            (reachable - 1) as u64,
            "one acceptance per reachable non-origin switch"
        );
        let dup = sim.counter_value(counters::PACKETS_DUPLICATE);
        prop_assert!(dup <= 2 * net.up_links().count() as u64);
    }

    /// After any single link failure, all routing tables agree with the
    /// ground truth: next hops follow shortest paths on the degraded graph
    /// and routing is loop-free.
    #[test]
    fn routes_converge_after_failure(net in arb_net(), pick in any::<prop::sample::Index>()) {
        let links: Vec<_> = net.up_links().map(|l| l.id).collect();
        let victim = links[pick.index(links.len())];
        let mut sim = build_lsr_sim(&net, SimDuration::micros(10));
        inject_link_event(&mut sim, &net, victim, false, SimDuration::ZERO);
        sim.run_to_quiescence();

        let mut degraded = net.clone();
        degraded.set_link_state(victim, dgmc_topology::LinkState::Down).unwrap();
        // Reference tables computed offline from the degraded truth.
        let reference: Vec<RoutingTable> = degraded
            .nodes()
            .map(|n| RoutingTable::compute(&degraded, n))
            .collect();
        // Hop-by-hop delivery over the reference tables is loop-free and
        // costs match, for every connected pair.
        for src in degraded.nodes() {
            for dst in degraded.nodes() {
                if !reference[src.index()].reaches(dst) {
                    continue;
                }
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    cur = reference[cur.index()].next_hop(dst).expect("reachable");
                    hops += 1;
                    prop_assert!(hops <= degraded.len(), "loop {src}->{dst}");
                }
            }
        }
    }

    /// Router LSA codec round-trips for every node of random networks.
    #[test]
    fn router_lsa_codec_round_trips(net in arb_net(), seq in 0u64..1000) {
        use dgmc_lsr::codec;
        for n in net.nodes() {
            let lsa = RouterLsa::describe(&net, n, seq);
            let mut buf = codec::router_lsa_bytes(&lsa);
            prop_assert_eq!(codec::decode_router_lsa(&mut buf).unwrap(), lsa);
            prop_assert!(buf.is_empty());
        }
    }

    /// LSDB image reconstruction is idempotent and insensitive to install
    /// order.
    #[test]
    fn lsdb_is_order_insensitive(net in arb_net(), order_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let mut forward = Lsdb::new(net.len());
        for n in net.nodes() {
            forward.install(RouterLsa::describe(&net, n, 1));
        }
        let mut shuffled_order: Vec<NodeId> = net.nodes().collect();
        shuffled_order.shuffle(&mut StdRng::seed_from_u64(order_seed));
        let mut shuffled = Lsdb::new(net.len());
        for n in shuffled_order {
            shuffled.install(RouterLsa::describe(&net, n, 1));
        }
        prop_assert_eq!(forward.local_image(), shuffled.local_image());
    }
}
