//! OSPF-lite link-state routing substrate.
//!
//! D-GMC is layered on a link-state routing (LSR) protocol: "an LSR protocol
//! makes complete knowledge of the network available to all switches" via
//! flooding of link-state advertisements (LSAs). This crate provides that
//! substrate:
//!
//! * [`flood`] — reliable network-wide flooding with duplicate suppression,
//!   usable with *any* payload (the D-GMC core floods its MC LSAs through the
//!   same mechanism, mirroring the paper's shared LSA transport),
//! * [`lsa`] — router LSAs with sequence numbers describing a switch's
//!   incident links,
//! * [`Lsdb`] — the link-state database each switch keeps, and the *local
//!   image* of the network it induces,
//! * [`RoutingTable`] — unicast next-hop tables computed from the local
//!   image by Dijkstra SPF,
//! * [`LsrNode`] — the per-switch state machine tying these together, and
//!   [`actor::LsrActor`] — a ready-made DES actor used to exercise the
//!   substrate standalone.
//!
//! # Examples
//!
//! ```
//! use dgmc_lsr::{Lsdb, RoutingTable};
//! use dgmc_lsr::lsa::RouterLsa;
//! use dgmc_topology::{generate, NodeId};
//!
//! let net = generate::ring(5);
//! let mut db = Lsdb::new(net.len());
//! for n in net.nodes() {
//!     db.install(RouterLsa::describe(&net, n, 1));
//! }
//! let image = db.local_image();
//! let table = RoutingTable::compute(&image, NodeId(0));
//! assert_eq!(table.next_hop(NodeId(2)), Some(NodeId(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod codec;
pub mod flood;
pub mod lsa;

mod lsdb;
mod node;
mod routes;

pub use lsdb::Lsdb;
pub use node::{LsrAction, LsrNode};
pub use routes::RoutingTable;
