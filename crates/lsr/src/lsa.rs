//! Link-state advertisement types.

use dgmc_topology::{LinkId, LinkState, Network, NodeId};
use std::fmt;

/// One incident link as described by its endpoint's router LSA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkAdv {
    /// Stable link identifier.
    pub link: LinkId,
    /// The far endpoint.
    pub neighbor: NodeId,
    /// Routing cost of the link.
    pub cost: u64,
    /// Whether the advertising endpoint sees the link as operational.
    pub up: bool,
}

/// A router LSA: a switch's authoritative description of its incident links.
///
/// This is the non-MC LSA of the paper ("the exact format of link/nodal event
/// descriptions is defined by the underlying unicast LSR protocol"); higher
/// sequence numbers supersede lower ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterLsa {
    /// The advertising switch.
    pub origin: NodeId,
    /// Monotonic per-origin sequence number.
    pub seq: u64,
    /// Incident links of the origin, in link-id order.
    pub links: Vec<LinkAdv>,
}

impl RouterLsa {
    /// Builds the LSA a switch would originate given ground truth `net`.
    ///
    /// Down links are included (with `up == false`) so receivers can mark
    /// them unusable rather than merely forgetting them.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not a node of `net`.
    pub fn describe(net: &Network, origin: NodeId, seq: u64) -> RouterLsa {
        assert!(net.contains_node(origin), "unknown origin {origin}");
        let mut links: Vec<LinkAdv> = net
            .links()
            .filter(|l| l.a == origin || l.b == origin)
            .map(|l| LinkAdv {
                link: l.id,
                neighbor: l.other(origin),
                cost: l.cost,
                up: l.state == LinkState::Up,
            })
            .collect();
        links.sort_by_key(|adv| adv.link);
        RouterLsa { origin, seq, links }
    }
}

impl fmt::Display for RouterLsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "router-lsa({} seq={} links={})",
            self.origin,
            self.seq,
            self.links.len()
        )
    }
}

/// Globally unique identifier of one flooding operation.
///
/// Duplicate suppression during flooding is keyed on this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FloodId {
    /// The switch that initiated the flood.
    pub origin: NodeId,
    /// Per-origin monotonic counter.
    pub seq: u64,
}

impl fmt::Display for FloodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flood({}, {})", self.origin, self.seq)
    }
}

/// A payload in flight during a flooding operation.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodPacket<P> {
    /// Identity of the flooding operation this packet belongs to.
    pub id: FloodId,
    /// The flooded payload (a router LSA, an MC LSA, ...).
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::{generate, LinkId};

    #[test]
    fn describe_lists_incident_links_sorted() {
        let net = generate::star(4); // links l0=(0,1) l1=(0,2) l2=(0,3)
        let lsa = RouterLsa::describe(&net, NodeId(0), 7);
        assert_eq!(lsa.origin, NodeId(0));
        assert_eq!(lsa.seq, 7);
        assert_eq!(lsa.links.len(), 3);
        assert!(lsa.links.windows(2).all(|w| w[0].link < w[1].link));
        let leaf = RouterLsa::describe(&net, NodeId(2), 1);
        assert_eq!(leaf.links.len(), 1);
        assert_eq!(leaf.links[0].neighbor, NodeId(0));
    }

    #[test]
    fn describe_includes_down_links_as_down() {
        let mut net = generate::path(3);
        net.set_link_state(LinkId(0), dgmc_topology::LinkState::Down)
            .unwrap();
        let lsa = RouterLsa::describe(&net, NodeId(1), 1);
        assert_eq!(lsa.links.len(), 2);
        let l0 = lsa.links.iter().find(|a| a.link == LinkId(0)).unwrap();
        assert!(!l0.up);
        let l1 = lsa.links.iter().find(|a| a.link == LinkId(1)).unwrap();
        assert!(l1.up);
    }

    #[test]
    fn flood_id_orders_by_origin_then_seq() {
        let a = FloodId {
            origin: NodeId(0),
            seq: 9,
        };
        let b = FloodId {
            origin: NodeId(1),
            seq: 1,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "flood(s0, 9)");
    }

    #[test]
    fn display_formats() {
        let net = generate::path(2);
        let lsa = RouterLsa::describe(&net, NodeId(0), 3);
        assert_eq!(lsa.to_string(), "router-lsa(s0 seq=3 links=1)");
    }
}
