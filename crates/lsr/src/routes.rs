use dgmc_topology::{spf, Network, NodeId, SpfCache};

/// A unicast routing table: next hop and cost toward every destination.
///
/// Computed by Dijkstra SPF over the switch's local image, exactly as OSPF
/// derives routing entries from the link-state database.
///
/// # Examples
///
/// ```
/// use dgmc_lsr::RoutingTable;
/// use dgmc_topology::{generate, NodeId};
///
/// let net = generate::path(4);
/// let t = RoutingTable::compute(&net, NodeId(0));
/// assert_eq!(t.next_hop(NodeId(3)), Some(NodeId(1)));
/// assert_eq!(t.cost(NodeId(3)), Some(3));
/// assert_eq!(t.next_hop(NodeId(0)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    me: NodeId,
    next_hop: Vec<Option<NodeId>>,
    cost: Vec<Option<u64>>,
}

impl RoutingTable {
    /// Computes the table for switch `me` over the (local image) network.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a node of `image`.
    pub fn compute(image: &Network, me: NodeId) -> RoutingTable {
        Self::from_tree(image, me, &spf::shortest_path_tree(image, me))
    }

    /// [`compute`](Self::compute) through an [`SpfCache`], sharing the SPF
    /// run with the MC topology algorithms and other switches holding the
    /// same image. Result identical to `compute`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a node of `image`.
    pub fn compute_with(image: &Network, me: NodeId, cache: &SpfCache) -> RoutingTable {
        Self::from_tree(image, me, &cache.tree(image, me))
    }

    fn from_tree(image: &Network, me: NodeId, tree: &spf::SpfTree) -> RoutingTable {
        let next_hop = image.nodes().map(|v| tree.first_hop(v)).collect();
        let cost = image.nodes().map(|v| tree.cost_to(v)).collect();
        RoutingTable { me, next_hop, cost }
    }

    /// The switch this table belongs to.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// Next hop toward `dest`, or `None` for self and unreachable nodes.
    pub fn next_hop(&self, dest: NodeId) -> Option<NodeId> {
        self.next_hop.get(dest.index()).copied().flatten()
    }

    /// Shortest-path cost to `dest` (`Some(0)` for self).
    pub fn cost(&self, dest: NodeId) -> Option<u64> {
        self.cost.get(dest.index()).copied().flatten()
    }

    /// Returns `true` if `dest` is reachable (self counts as reachable).
    pub fn reaches(&self, dest: NodeId) -> bool {
        self.cost(dest).is_some()
    }

    /// Number of destinations the table covers.
    pub fn len(&self) -> usize {
        self.next_hop.len()
    }

    /// Returns `true` if the table covers no destinations.
    pub fn is_empty(&self) -> bool {
        self.next_hop.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::{generate, LinkId, LinkState};

    #[test]
    fn next_hops_follow_shortest_paths() {
        let net = generate::ring(6); // 0-1-2-3-4-5-0
        let t = RoutingTable::compute(&net, NodeId(0));
        assert_eq!(t.next_hop(NodeId(1)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(4)), Some(NodeId(5)));
        assert_eq!(t.cost(NodeId(3)), Some(3));
    }

    #[test]
    fn unreachable_destinations_have_no_route() {
        let mut net = generate::path(3);
        net.set_link_state(LinkId(1), LinkState::Down).unwrap();
        let t = RoutingTable::compute(&net, NodeId(0));
        assert!(!t.reaches(NodeId(2)));
        assert_eq!(t.next_hop(NodeId(2)), None);
        assert!(t.reaches(NodeId(0)));
    }

    #[test]
    fn routes_are_hop_by_hop_consistent() {
        // Following next hops from any node reaches the destination.
        let net = generate::grid(3, 3);
        let tables: Vec<RoutingTable> = net
            .nodes()
            .map(|n| RoutingTable::compute(&net, n))
            .collect();
        for src in net.nodes() {
            for dst in net.nodes() {
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    cur = tables[cur.index()].next_hop(dst).expect("route exists");
                    hops += 1;
                    assert!(hops <= net.len(), "routing loop from {src} to {dst}");
                }
            }
        }
    }

    #[test]
    fn cached_compute_matches_from_scratch() {
        use dgmc_topology::SpfCache;
        let mut net = generate::grid(3, 3);
        let cache = SpfCache::new();
        for n in net.nodes() {
            assert_eq!(
                RoutingTable::compute_with(&net, n, &cache),
                RoutingTable::compute(&net, n)
            );
        }
        net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        for n in net.nodes() {
            assert_eq!(
                RoutingTable::compute_with(&net, n, &cache),
                RoutingTable::compute(&net, n)
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 18, "one SPF per (switch, image)");
        // A second switch with the same image shares the entry.
        RoutingTable::compute_with(&net, NodeId(0), &cache);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn table_size_matches_network() {
        let net = generate::star(5);
        let t = RoutingTable::compute(&net, NodeId(2));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.owner(), NodeId(2));
    }
}
