//! Binary wire format for flood packets and router LSAs.
//!
//! The simulator passes LSAs as in-memory values; this codec is the
//! on-the-wire form a deployment would exchange, and doubles as a
//! size-accounting tool (the paper's Experiment 1 quotes AAL-5 per-hop
//! transmission times for ~50-byte packets — [`RouterLsa`] encodings land in
//! that range for typical degrees).
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! FloodId      := origin:u32 seq:u64
//! LinkAdv      := link:u32 neighbor:u32 cost:u64 up:u8
//! RouterLsa    := origin:u32 seq:u64 n_links:u16 LinkAdv*
//! ```

use crate::lsa::{FloodId, LinkAdv, RouterLsa};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgmc_topology::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag or flag byte held an unknown value.
    BadTag(u8),
    /// A length field claimed more elements than the decoder allows (a
    /// garbage count must not drive a giant allocation).
    Oversize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("buffer truncated mid-value"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::Oversize => f.write_str("length field exceeds decoder limits"),
        }
    }
}

impl Error for CodecError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Encodes a [`FloodId`].
pub fn encode_flood_id(id: FloodId, out: &mut BytesMut) {
    out.put_u32(id.origin.0);
    out.put_u64(id.seq);
}

/// Decodes a [`FloodId`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input.
pub fn decode_flood_id(buf: &mut Bytes) -> Result<FloodId, CodecError> {
    need(buf, 12)?;
    Ok(FloodId {
        origin: NodeId(buf.get_u32()),
        seq: buf.get_u64(),
    })
}

/// Encodes a [`RouterLsa`].
pub fn encode_router_lsa(lsa: &RouterLsa, out: &mut BytesMut) {
    out.put_u32(lsa.origin.0);
    out.put_u64(lsa.seq);
    out.put_u16(lsa.links.len() as u16);
    for adv in &lsa.links {
        out.put_u32(adv.link.0);
        out.put_u32(adv.neighbor.0);
        out.put_u64(adv.cost);
        out.put_u8(u8::from(adv.up));
    }
}

/// Decodes a [`RouterLsa`].
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::BadTag`] on an
/// invalid up/down flag.
pub fn decode_router_lsa(buf: &mut Bytes) -> Result<RouterLsa, CodecError> {
    need(buf, 14)?;
    let origin = NodeId(buf.get_u32());
    let seq = buf.get_u64();
    let n = buf.get_u16() as usize;
    // Every advertised link costs 17 bytes: check before allocating so a
    // torn count can never reserve more memory than the datagram holds.
    need(buf, n * 17)?;
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 17)?;
        let link = LinkId(buf.get_u32());
        let neighbor = NodeId(buf.get_u32());
        let cost = buf.get_u64();
        let up = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(CodecError::BadTag(t)),
        };
        links.push(LinkAdv {
            link,
            neighbor,
            cost,
            up,
        });
    }
    Ok(RouterLsa { origin, seq, links })
}

/// Convenience: one-shot encoding of a router LSA to a frozen buffer.
pub fn router_lsa_bytes(lsa: &RouterLsa) -> Bytes {
    let mut out = BytesMut::new();
    encode_router_lsa(lsa, &mut out);
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn flood_id_round_trip() {
        let id = FloodId {
            origin: NodeId(42),
            seq: 0xDEAD_BEEF_CAFE,
        };
        let mut out = BytesMut::new();
        encode_flood_id(id, &mut out);
        assert_eq!(out.len(), 12);
        let mut buf = out.freeze();
        assert_eq!(decode_flood_id(&mut buf).unwrap(), id);
        assert!(buf.is_empty());
    }

    #[test]
    fn router_lsa_round_trip() {
        let net = generate::grid(3, 3);
        for n in net.nodes() {
            let lsa = RouterLsa::describe(&net, n, 7);
            let mut buf = router_lsa_bytes(&lsa);
            let back = decode_router_lsa(&mut buf).unwrap();
            assert_eq!(back, lsa);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let net = generate::path(3);
        let lsa = RouterLsa::describe(&net, NodeId(1), 1);
        let full = router_lsa_bytes(&lsa);
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            assert_eq!(
                decode_router_lsa(&mut buf),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_up_flag_is_rejected() {
        let net = generate::path(2);
        let lsa = RouterLsa::describe(&net, NodeId(0), 1);
        let mut raw = BytesMut::from(&router_lsa_bytes(&lsa)[..]);
        let last = raw.len() - 1;
        raw[last] = 9; // corrupt the up flag
        let mut buf = raw.freeze();
        assert_eq!(decode_router_lsa(&mut buf), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn encoded_size_matches_paper_scale() {
        // A degree-4 router LSA is 14 + 4*17 = 82 bytes — the tens-of-bytes
        // regime the paper's AAL-5 timing numbers assume.
        let net = generate::grid(3, 3);
        let lsa = RouterLsa::describe(&net, NodeId(4), 1); // center, degree 4
        assert_eq!(router_lsa_bytes(&lsa).len(), 14 + 4 * 17);
    }
}
