//! Reliable flooding with duplicate suppression.
//!
//! Flooding is the transport of every advertisement in the system — router
//! LSAs and D-GMC's MC LSAs alike. Each flooding operation has a unique
//! [`FloodId`]; a node relays the first copy it sees on every up link except
//! the arrival link, and drops duplicates.

use crate::lsa::{FloodId, FloodPacket};
use dgmc_topology::{LinkId, NodeId};
use std::collections::HashSet;

/// Per-node flooding engine: originates flood ids and suppresses duplicates.
///
/// # Examples
///
/// ```
/// use dgmc_lsr::flood::Flooder;
/// use dgmc_topology::NodeId;
///
/// let mut f = Flooder::new(NodeId(3));
/// let pkt = f.originate("hello");
/// assert_eq!(pkt.id.origin, NodeId(3));
/// // Our own floods are already marked seen:
/// assert!(!f.accept(pkt.id));
/// ```
#[derive(Debug, Clone)]
pub struct Flooder {
    node: NodeId,
    next_seq: u64,
    seen: HashSet<FloodId>,
}

impl Flooder {
    /// Creates the flooding engine of switch `node`.
    pub fn new(node: NodeId) -> Self {
        Flooder {
            node,
            next_seq: 0,
            seen: HashSet::new(),
        }
    }

    /// The owning switch.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Starts a new flooding operation carrying `payload`.
    ///
    /// The returned packet must be relayed on every up link of the origin;
    /// the origin itself will never re-accept it.
    pub fn originate<P>(&mut self, payload: P) -> FloodPacket<P> {
        let id = FloodId {
            origin: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.seen.insert(id);
        FloodPacket { id, payload }
    }

    /// Records the arrival of flood `id`; returns `true` exactly once per id
    /// (first copy), `false` for duplicates.
    pub fn accept(&mut self, id: FloodId) -> bool {
        self.seen.insert(id)
    }

    /// Returns `true` if `id` has been seen (originated or accepted).
    pub fn has_seen(&self, id: FloodId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of distinct flood ids seen so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

/// The links a relaying node must forward a just-accepted packet on:
/// every up link except the (optional) arrival link.
///
/// `incident` is the node's local view of its links as
/// `(link, neighbor, up)` triples.
pub fn relay_links(
    incident: &[(LinkId, NodeId, bool)],
    arrival: Option<LinkId>,
) -> Vec<(LinkId, NodeId)> {
    incident
        .iter()
        .filter(|(l, _, up)| *up && Some(*l) != arrival)
        .map(|(l, n, _)| (*l, *n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originate_assigns_monotone_sequences() {
        let mut f = Flooder::new(NodeId(1));
        let a = f.originate(1u32);
        let b = f.originate(2u32);
        assert_eq!(a.id.seq + 1, b.id.seq);
        assert_eq!(a.id.origin, NodeId(1));
        assert_eq!(f.seen_count(), 2);
    }

    #[test]
    fn accept_is_idempotent() {
        let mut f = Flooder::new(NodeId(0));
        let id = FloodId {
            origin: NodeId(5),
            seq: 3,
        };
        assert!(!f.has_seen(id));
        assert!(f.accept(id), "first copy accepted");
        assert!(!f.accept(id), "duplicate dropped");
        assert!(f.has_seen(id));
    }

    #[test]
    fn own_floods_are_preseen() {
        let mut f = Flooder::new(NodeId(2));
        let pkt = f.originate(());
        assert!(!f.accept(pkt.id), "a reflected copy must be dropped");
    }

    #[test]
    fn relay_links_excludes_arrival_and_down() {
        let incident = vec![
            (LinkId(0), NodeId(1), true),
            (LinkId(1), NodeId(2), false),
            (LinkId(2), NodeId(3), true),
        ];
        let out = relay_links(&incident, Some(LinkId(0)));
        assert_eq!(out, vec![(LinkId(2), NodeId(3))]);
        let all = relay_links(&incident, None);
        assert_eq!(all, vec![(LinkId(0), NodeId(1)), (LinkId(2), NodeId(3))]);
    }

    #[test]
    fn distinct_origins_do_not_collide() {
        let mut f = Flooder::new(NodeId(0));
        let same_seq_other_origin = FloodId {
            origin: NodeId(9),
            seq: 0,
        };
        f.originate(());
        assert!(f.accept(same_seq_other_origin));
    }
}
