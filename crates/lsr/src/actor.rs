//! A ready-made DES actor running the LSR substrate standalone.
//!
//! Used to validate the substrate (flooding coverage, route convergence after
//! failures) independently of the D-GMC layer, and as the template the D-GMC
//! switch actor follows.

use crate::lsa::{FloodPacket, RouterLsa};
use crate::{LsrAction, LsrNode};
use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, Simulation};
use dgmc_topology::{LinkId, Network, NodeId};

/// Messages exchanged by [`LsrActor`]s.
#[derive(Debug, Clone)]
pub enum LsrMsg {
    /// A flood packet arriving over `via`.
    Packet {
        /// The packet.
        packet: FloodPacket<RouterLsa>,
        /// The link it arrived on.
        via: LinkId,
    },
    /// A local link state change; `originate` marks the designated detector.
    LinkEvent {
        /// The affected incident link.
        link: LinkId,
        /// New operational state.
        up: bool,
        /// Whether this endpoint floods the advertisement.
        originate: bool,
    },
}

/// Counter names bumped by [`LsrActor`].
pub mod counters {
    /// Flood operations initiated (one per advertised event).
    pub const FLOODS_ORIGINATED: &str = "lsr.floods_originated";
    /// Fresh (non-duplicate) packets accepted.
    pub const PACKETS_ACCEPTED: &str = "lsr.packets_accepted";
    /// Duplicate packets suppressed.
    pub const PACKETS_DUPLICATE: &str = "lsr.packets_duplicate";
    /// Routing table recomputations.
    pub const ROUTE_RECOMPUTES: &str = "lsr.route_recomputes";
}

/// DES actor hosting one [`LsrNode`].
#[derive(Debug)]
pub struct LsrActor {
    node: LsrNode,
    per_hop: SimDuration,
}

impl LsrActor {
    /// Creates the actor for switch `me` with the given per-hop LSA delay.
    pub fn new(me: NodeId, net: &Network, per_hop: SimDuration) -> Self {
        LsrActor {
            node: LsrNode::new(me, net),
            per_hop,
        }
    }

    /// Read access to the hosted state machine.
    pub fn node(&self) -> &LsrNode {
        &self.node
    }

    fn execute(&self, ctx: &mut Ctx<'_, LsrMsg>, actions: Vec<LsrAction>) {
        for action in actions {
            match action {
                LsrAction::Send {
                    link,
                    neighbor,
                    packet,
                } => {
                    ctx.send(
                        ActorId(neighbor.0),
                        self.per_hop,
                        LsrMsg::Packet { packet, via: link },
                    );
                }
                LsrAction::RoutesChanged => {
                    ctx.counter(counters::ROUTE_RECOMPUTES).incr();
                }
            }
        }
    }
}

impl Actor<LsrMsg> for LsrActor {
    fn handle(&mut self, ctx: &mut Ctx<'_, LsrMsg>, env: Envelope<LsrMsg>) {
        match env.msg {
            LsrMsg::Packet { packet, via } => {
                let actions = self.node.on_packet(packet, Some(via));
                if actions.is_empty() {
                    ctx.counter(counters::PACKETS_DUPLICATE).incr();
                } else {
                    ctx.counter(counters::PACKETS_ACCEPTED).incr();
                }
                self.execute(ctx, actions);
            }
            LsrMsg::LinkEvent {
                link,
                up,
                originate,
            } => {
                if originate {
                    ctx.counter(counters::FLOODS_ORIGINATED).incr();
                    let actions = self.node.local_link_event(link, up);
                    self.execute(ctx, actions);
                } else {
                    self.node.note_link_state(link, up);
                }
            }
        }
    }
}

/// Builds a simulation hosting one [`LsrActor`] per switch of `net`.
///
/// Actor ids equal node ids (`ActorId(i)` hosts `NodeId(i)`).
pub fn build_lsr_sim(net: &Network, per_hop: SimDuration) -> Simulation<LsrMsg> {
    let mut sim = Simulation::new();
    for n in net.nodes() {
        let id = sim.add_actor(Box::new(LsrActor::new(n, net, per_hop)));
        debug_assert_eq!(id.index(), n.index());
    }
    sim
}

/// Injects a link failure/recovery into a running simulation: both endpoints
/// learn immediately; the lower-id endpoint originates the advertisement.
///
/// # Panics
///
/// Panics if `link` is not a link of `net`.
pub fn inject_link_event(
    sim: &mut Simulation<LsrMsg>,
    net: &Network,
    link: LinkId,
    up: bool,
    delay: SimDuration,
) {
    let l = net.link(link).expect("known link");
    sim.inject(
        ActorId(l.a.0),
        delay,
        LsrMsg::LinkEvent {
            link,
            up,
            originate: true,
        },
    );
    sim.inject(
        ActorId(l.b.0),
        delay,
        LsrMsg::LinkEvent {
            link,
            up,
            originate: false,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn failure_advertisement_reaches_everyone() {
        let net = generate::grid(3, 3);
        let mut sim = build_lsr_sim(&net, SimDuration::micros(10));
        let link = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        inject_link_event(&mut sim, &net, link, false, SimDuration::ZERO);
        sim.run_to_quiescence();
        // Exactly one flood originated; every other switch accepted it once.
        assert_eq!(sim.counter_value(counters::FLOODS_ORIGINATED), 1);
        assert_eq!(
            sim.counter_value(counters::PACKETS_ACCEPTED),
            (net.len() - 1) as u64
        );
        // Every switch recomputed routes exactly once (origin included).
        assert_eq!(
            sim.counter_value(counters::ROUTE_RECOMPUTES),
            net.len() as u64
        );
    }

    #[test]
    fn duplicates_are_bounded_by_link_count() {
        let net = generate::ring(6);
        let mut sim = build_lsr_sim(&net, SimDuration::micros(10));
        let link = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        inject_link_event(&mut sim, &net, link, false, SimDuration::ZERO);
        sim.run_to_quiescence();
        let accepted = sim.counter_value(counters::PACKETS_ACCEPTED);
        let dup = sim.counter_value(counters::PACKETS_DUPLICATE);
        assert_eq!(accepted, 5);
        // Each up link carries at most one copy in each direction.
        assert!(dup <= 2 * net.up_links().count() as u64);
    }

    #[test]
    fn repair_restores_routes() {
        let net = generate::ring(5);
        let mut sim = build_lsr_sim(&net, SimDuration::micros(10));
        let link = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        inject_link_event(&mut sim, &net, link, false, SimDuration::ZERO);
        sim.run_to_quiescence();
        inject_link_event(&mut sim, &net, link, true, SimDuration::micros(1));
        sim.run_to_quiescence();
        // Two floods total (failure + repair).
        assert_eq!(sim.counter_value(counters::FLOODS_ORIGINATED), 2);
        assert_eq!(
            sim.counter_value(counters::PACKETS_ACCEPTED),
            2 * (net.len() - 1) as u64
        );
    }
}
