use crate::lsa::RouterLsa;
use dgmc_topology::{LinkState, Network, NodeId};
use std::collections::HashMap;

/// The link-state database: the most recent router LSA from every switch.
///
/// From the database each switch derives its *local image* of the network —
/// the paper's premise that "each switch maintains a complete local image of
/// the network, which it uses to compute routing table entries".
///
/// # Examples
///
/// ```
/// use dgmc_lsr::Lsdb;
/// use dgmc_lsr::lsa::RouterLsa;
/// use dgmc_topology::{generate, NodeId};
///
/// let net = generate::path(3);
/// let mut db = Lsdb::new(3);
/// for n in net.nodes() {
///     assert!(db.install(RouterLsa::describe(&net, n, 1)));
/// }
/// assert!(db.local_image().is_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lsdb {
    n_nodes: usize,
    lsas: HashMap<NodeId, RouterLsa>,
}

impl Lsdb {
    /// Creates an empty database for a network of `n_nodes` switches.
    pub fn new(n_nodes: usize) -> Self {
        Lsdb {
            n_nodes,
            lsas: HashMap::new(),
        }
    }

    /// Number of switches the database is sized for.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Installs `lsa` if it is newer than the stored one from the same
    /// origin; returns `true` if the database changed.
    pub fn install(&mut self, lsa: RouterLsa) -> bool {
        match self.lsas.get(&lsa.origin) {
            Some(old) if old.seq >= lsa.seq => false,
            _ => {
                self.lsas.insert(lsa.origin, lsa);
                true
            }
        }
    }

    /// The stored LSA of `origin`, if any.
    pub fn get(&self, origin: NodeId) -> Option<&RouterLsa> {
        self.lsas.get(&origin)
    }

    /// Number of origins with a stored LSA.
    pub fn len(&self) -> usize {
        self.lsas.len()
    }

    /// Returns `true` if no LSAs are stored.
    pub fn is_empty(&self) -> bool {
        self.lsas.is_empty()
    }

    /// Reconstructs the local image of the network.
    ///
    /// A link appears in the image when at least one endpoint advertises it;
    /// it is *up* only when **no** advertising endpoint reports it down
    /// (failures are learned from a single detector — DESIGN.md §6 — so one
    /// "down" claim wins over a stale "up").
    ///
    /// Link ids in the image are freshly assigned and do **not** correspond
    /// to ground-truth [`dgmc_topology::LinkId`]s; topology computations only
    /// depend on endpoints and costs.
    pub fn local_image(&self) -> Network {
        let mut image = Network::with_nodes(self.n_nodes);
        // (a, b) -> (cost, all_claims_up)
        let mut claims: HashMap<(NodeId, NodeId), (u64, bool)> = HashMap::new();
        for lsa in self.lsas.values() {
            for adv in &lsa.links {
                let (a, b) = if lsa.origin < adv.neighbor {
                    (lsa.origin, adv.neighbor)
                } else {
                    (adv.neighbor, lsa.origin)
                };
                let entry = claims.entry((a, b)).or_insert((adv.cost, true));
                entry.1 &= adv.up;
            }
        }
        // Deterministic insertion order.
        let mut sorted: Vec<_> = claims.into_iter().collect();
        sorted.sort_by_key(|&((a, b), _)| (a, b));
        for ((a, b), (cost, up)) in sorted {
            if a.index() >= self.n_nodes || b.index() >= self.n_nodes {
                continue;
            }
            let id = image.add_link(a, b, cost).expect("claims are deduplicated");
            if !up {
                image
                    .set_link_state(id, LinkState::Down)
                    .expect("just added");
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::{generate, LinkId};

    fn full_db(net: &Network, seq: u64) -> Lsdb {
        let mut db = Lsdb::new(net.len());
        for n in net.nodes() {
            db.install(RouterLsa::describe(net, n, seq));
        }
        db
    }

    #[test]
    fn image_reconstructs_ground_truth_shape() {
        let net = generate::grid(3, 3);
        let db = full_db(&net, 1);
        let image = db.local_image();
        assert_eq!(image.len(), net.len());
        assert_eq!(image.up_links().count(), net.up_links().count());
        for l in net.up_links() {
            let il = image.link_between(l.a, l.b).expect("link present");
            assert_eq!(il.cost, l.cost);
            assert!(il.is_up());
        }
    }

    #[test]
    fn stale_lsas_are_rejected() {
        let net = generate::path(3);
        let mut db = full_db(&net, 5);
        let stale = RouterLsa::describe(&net, NodeId(0), 4);
        assert!(!db.install(stale));
        let equal = RouterLsa::describe(&net, NodeId(0), 5);
        assert!(!db.install(equal));
        let newer = RouterLsa::describe(&net, NodeId(0), 6);
        assert!(db.install(newer));
    }

    #[test]
    fn single_down_claim_wins() {
        // Node 0 advertises link 0 down; node 1 still claims it up.
        let mut net = generate::path(3);
        let mut db = full_db(&net, 1);
        net.set_link_state(LinkId(0), LinkState::Down).unwrap();
        db.install(RouterLsa::describe(&net, NodeId(0), 2));
        let image = db.local_image();
        let l = image.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!(!l.is_up(), "one down claim must beat a stale up claim");
        assert!(!image.is_connected());
    }

    #[test]
    fn partial_database_yields_partial_image() {
        let net = generate::ring(4);
        let mut db = Lsdb::new(4);
        db.install(RouterLsa::describe(&net, NodeId(0), 1));
        let image = db.local_image();
        // Node 0 advertises its two incident links only.
        assert_eq!(image.up_links().count(), 2);
        assert!(db.get(NodeId(0)).is_some());
        assert!(db.get(NodeId(1)).is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn image_is_deterministic() {
        let net = generate::grid(4, 4);
        let db = full_db(&net, 1);
        assert_eq!(db.local_image(), db.local_image());
    }

    #[test]
    fn empty_db_yields_isolated_nodes() {
        let db = Lsdb::new(3);
        assert!(db.is_empty());
        let image = db.local_image();
        assert_eq!(image.len(), 3);
        assert_eq!(image.link_count(), 0);
    }
}
