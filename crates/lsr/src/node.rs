use crate::flood::{relay_links, Flooder};
use crate::lsa::{FloodPacket, RouterLsa};
use crate::{Lsdb, RoutingTable};
use dgmc_topology::{LinkId, Network, NodeId};

/// An instruction emitted by [`LsrNode`] for its hosting actor to execute.
///
/// The state machine is pure; all I/O (timed sends in the simulator) is the
/// host's job.
#[derive(Debug, Clone, PartialEq)]
pub enum LsrAction {
    /// Transmit `packet` on `link` toward `neighbor`.
    Send {
        /// The outgoing link.
        link: LinkId,
        /// The far endpoint of that link.
        neighbor: NodeId,
        /// The packet to transmit.
        packet: FloodPacket<RouterLsa>,
    },
    /// The routing table changed as a result of the processed input.
    RoutesChanged,
}

/// The per-switch link-state routing state machine.
///
/// Combines the flooding engine, the link-state database and the routing
/// table. Inputs are local link events and received flood packets; outputs
/// are [`LsrAction`]s.
///
/// # Examples
///
/// ```
/// use dgmc_lsr::{LsrAction, LsrNode};
/// use dgmc_topology::{generate, LinkId, NodeId};
///
/// let net = generate::path(3);
/// let mut n0 = LsrNode::new(NodeId(0), &net);
/// let actions = n0.local_link_event(LinkId(0), false);
/// // The detector floods a router LSA on its remaining up links (none here,
/// // the failed link was its only one) and recomputes routes.
/// assert!(actions.contains(&LsrAction::RoutesChanged));
/// ```
#[derive(Debug, Clone)]
pub struct LsrNode {
    me: NodeId,
    flooder: Flooder,
    lsdb: Lsdb,
    routes: RoutingTable,
    /// Local ground truth about incident links: (link, neighbor, cost, up).
    incident: Vec<(LinkId, NodeId, u64, bool)>,
    next_lsa_seq: u64,
}

impl LsrNode {
    /// Creates the node with a warm-start database describing `net`.
    ///
    /// The paper assumes the unicast LSR protocol is already in steady state
    /// ("the underlying unicast routing protocol ... is responsible for
    /// discovering much of the network status information"), so every switch
    /// starts with a complete, consistent image.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a node of `net`.
    pub fn new(me: NodeId, net: &Network) -> LsrNode {
        assert!(net.contains_node(me), "unknown switch {me}");
        let mut lsdb = Lsdb::new(net.len());
        for n in net.nodes() {
            lsdb.install(RouterLsa::describe(net, n, 0));
        }
        let image = lsdb.local_image();
        let routes = RoutingTable::compute(&image, me);
        let incident = net
            .links()
            .filter(|l| l.a == me || l.b == me)
            .map(|l| (l.id, l.other(me), l.cost, l.is_up()))
            .collect();
        LsrNode {
            me,
            flooder: Flooder::new(me),
            lsdb,
            routes,
            incident,
            next_lsa_seq: 1,
        }
    }

    /// The owning switch.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The current routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The current link-state database.
    pub fn lsdb(&self) -> &Lsdb {
        &self.lsdb
    }

    /// The node's local image of the network.
    pub fn local_image(&self) -> Network {
        self.lsdb.local_image()
    }

    /// Local view of incident links as `(link, neighbor, up)` triples.
    pub fn incident_links(&self) -> Vec<(LinkId, NodeId, bool)> {
        self.incident
            .iter()
            .map(|&(l, n, _, up)| (l, n, up))
            .collect()
    }

    /// Updates the local view of an incident link *without* advertising it.
    ///
    /// Both endpoints of a failed link stop using it immediately (physical
    /// detection), but only the designated detector floods the event; the
    /// other endpoint calls this method.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not incident to this switch.
    pub fn note_link_state(&mut self, link: LinkId, up: bool) {
        let entry = self
            .incident
            .iter_mut()
            .find(|(l, ..)| *l == link)
            .unwrap_or_else(|| panic!("link {link} is not incident to {}", self.me));
        entry.3 = up;
    }

    /// Reacts to a state change of an incident link detected locally.
    ///
    /// Updates the local view, originates a fresh router LSA (one flood per
    /// event, per the paper's accounting) and recomputes routes.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not incident to this switch.
    pub fn local_link_event(&mut self, link: LinkId, up: bool) -> Vec<LsrAction> {
        self.note_link_state(link, up);
        // Build the new self-LSA from the updated local view.
        let links = self
            .incident
            .iter()
            .map(|&(l, n, cost, up)| crate::lsa::LinkAdv {
                link: l,
                neighbor: n,
                cost,
                up,
            })
            .collect();
        let lsa = RouterLsa {
            origin: self.me,
            seq: self.next_lsa_seq,
            links,
        };
        self.next_lsa_seq += 1;
        self.lsdb.install(lsa.clone());
        self.recompute_routes();
        let packet = self.flooder.originate(lsa);
        let mut actions: Vec<LsrAction> = relay_links(&self.incident_links(), None)
            .into_iter()
            .map(|(l, n)| LsrAction::Send {
                link: l,
                neighbor: n,
                packet: packet.clone(),
            })
            .collect();
        actions.push(LsrAction::RoutesChanged);
        actions
    }

    /// Processes a flood packet arriving on `arrival` (None for loopback
    /// injection). Returns the relay/recompute actions; duplicates produce
    /// none.
    pub fn on_packet(
        &mut self,
        packet: FloodPacket<RouterLsa>,
        arrival: Option<LinkId>,
    ) -> Vec<LsrAction> {
        if !self.flooder.accept(packet.id) {
            return Vec::new();
        }
        let mut actions: Vec<LsrAction> = relay_links(&self.incident_links(), arrival)
            .into_iter()
            .map(|(l, n)| LsrAction::Send {
                link: l,
                neighbor: n,
                packet: packet.clone(),
            })
            .collect();
        if self.lsdb.install(packet.payload) {
            self.recompute_routes();
            actions.push(LsrAction::RoutesChanged);
        }
        actions
    }

    fn recompute_routes(&mut self) {
        let image = self.lsdb.local_image();
        self.routes = RoutingTable::compute(&image, self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    #[test]
    fn warm_start_has_complete_routes() {
        let net = generate::ring(5);
        let node = LsrNode::new(NodeId(2), &net);
        for dst in net.nodes() {
            assert!(node.routes().reaches(dst));
        }
        assert_eq!(node.lsdb().len(), 5);
    }

    #[test]
    fn link_event_originates_one_flood() {
        let net = generate::ring(4);
        let mut node = LsrNode::new(NodeId(0), &net);
        let link = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        let actions = node.local_link_event(link, false);
        let sends: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, LsrAction::Send { .. }))
            .collect();
        // The failed link is excluded from the relay set; one up link remains.
        assert_eq!(sends.len(), 1);
        assert!(actions.contains(&LsrAction::RoutesChanged));
        // Routing now detours the long way around the ring.
        assert_eq!(node.routes().cost(NodeId(1)), Some(3));
    }

    #[test]
    fn duplicate_packets_are_silent() {
        let net = generate::path(3);
        let mut n1 = LsrNode::new(NodeId(1), &net);
        let mut n0 = LsrNode::new(NodeId(0), &net);
        let link01 = net.link_between(NodeId(0), NodeId(1)).unwrap().id;
        let actions = n0.local_link_event(link01, false);
        let packet = actions.iter().find_map(|a| match a {
            LsrAction::Send { packet, .. } => Some(packet.clone()),
            _ => None,
        });
        // n0's only up link was... none: link01 was its single link. Then no
        // Send was emitted; craft the packet manually instead.
        let packet = packet.unwrap_or_else(|| FloodPacket {
            id: crate::lsa::FloodId {
                origin: NodeId(0),
                seq: 0,
            },
            payload: n0.lsdb().get(NodeId(0)).unwrap().clone(),
        });
        let first = n1.on_packet(packet.clone(), Some(link01));
        assert!(!first.is_empty(), "fresh packet relays and installs");
        let dup = n1.on_packet(packet, Some(link01));
        assert!(dup.is_empty(), "duplicate is suppressed");
    }

    #[test]
    fn stale_lsa_relays_but_does_not_recompute() {
        let net = generate::ring(4);
        let mut n2 = LsrNode::new(NodeId(2), &net);
        // A packet carrying the seq-0 warm-start LSA is stale (db has seq 0
        // already; install of equal seq fails) yet must still be relayed once.
        let stale = FloodPacket {
            id: crate::lsa::FloodId {
                origin: NodeId(0),
                seq: 99,
            },
            payload: RouterLsa::describe(&net, NodeId(0), 0),
        };
        let arrival = net.link_between(NodeId(1), NodeId(2)).unwrap().id;
        let actions = n2.on_packet(stale, Some(arrival));
        assert!(actions.iter().all(|a| matches!(a, LsrAction::Send { .. })));
        assert!(!actions.is_empty());
    }

    #[test]
    #[should_panic(expected = "not incident")]
    fn foreign_link_event_panics() {
        let net = generate::path(4);
        let mut node = LsrNode::new(NodeId(0), &net);
        let far = net.link_between(NodeId(2), NodeId(3)).unwrap().id;
        node.local_link_event(far, false);
    }
}
