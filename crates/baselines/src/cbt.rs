//! The core-based tree (CBT) model.
//!
//! CBT builds receiver-only MCs as shared trees rooted at a distinguished
//! *core* switch: a joining member unicasts a join request toward the core
//! and grafts onto the tree where the request first meets it. The paper
//! notes the trade-offs: efficient use of network resources, but traffic
//! concentration on the shared tree and sensitivity to core placement —
//! both quantified here for the comparison experiments.

use dgmc_mctree::McTopology;
use dgmc_obs::MetricsRegistry;
use dgmc_topology::{metrics, spf, Network, NodeId};
use std::collections::BTreeSet;

/// Metric names recorded by [`CbtTree::join_recorded`], designed to sit next
/// to D-GMC's `dgmc.*` counters in one [`MetricsRegistry`] snapshot.
pub mod metric_names {
    /// Join requests sent toward the core (one per joining member).
    pub const JOIN_REQUESTS: &str = "cbt.join_requests";
    /// Total hops traveled by join requests (the signaling cost CBT pays
    /// where flooding protocols pay a flood).
    pub const JOIN_HOPS_TOTAL: &str = "cbt.join_hops_total";
    /// Hops traveled by each individual join request.
    pub const JOIN_HOPS: &str = "cbt.join_hops";
}

/// A core-based shared tree.
///
/// # Examples
///
/// ```
/// use dgmc_baselines::cbt::CbtTree;
/// use dgmc_topology::{generate, NodeId};
///
/// let net = generate::grid(3, 3);
/// let mut cbt = CbtTree::new(NodeId(4));
/// let hops = cbt.join(&net, NodeId(0)).unwrap();
/// assert_eq!(hops, 2);
/// assert!(cbt.topology().terminals().contains(&NodeId(0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CbtTree {
    core: NodeId,
    tree: McTopology,
}

impl CbtTree {
    /// Creates an empty tree rooted at `core`.
    pub fn new(core: NodeId) -> CbtTree {
        let mut terminals = BTreeSet::new();
        terminals.insert(core);
        CbtTree {
            core,
            tree: McTopology::new(terminals),
        }
    }

    /// The core switch.
    pub fn core(&self) -> NodeId {
        self.core
    }

    /// The current shared tree (the core always counts as a terminal).
    pub fn topology(&self) -> &McTopology {
        &self.tree
    }

    /// Current member switches (excluding the core unless it joined).
    pub fn members(&self) -> BTreeSet<NodeId> {
        self.tree
            .terminals()
            .iter()
            .copied()
            .filter(|&n| n != self.core)
            .collect()
    }

    /// Grafts `member` onto the tree: a join request travels the unicast
    /// shortest path toward the core until it meets the tree.
    ///
    /// Returns the number of hops the join request traveled (the signaling
    /// cost), or `None` if the member cannot reach the tree.
    pub fn join(&mut self, net: &Network, member: NodeId) -> Option<usize> {
        if self.tree.touches(member) {
            let mut terminals = self.tree.terminals().clone();
            terminals.insert(member);
            self.tree.set_terminals(terminals);
            return Some(0);
        }
        let spt = spf::shortest_path_tree(net, member);
        let path = spt.path_to(self.core)?;
        let mut terminals = self.tree.terminals().clone();
        terminals.insert(member);
        self.tree.set_terminals(terminals);
        let mut hops = 0;
        for w in path.windows(2) {
            hops += 1;
            let grafted_onto_tree = self.tree.touches(w[1]) && w[1] != member;
            self.tree.insert_edge(w[0], w[1]);
            if grafted_onto_tree {
                break;
            }
        }
        Some(hops)
    }

    /// Like [`CbtTree::join`], additionally recording the signaling cost
    /// into `registry` ([`metric_names::JOIN_REQUESTS`] counter plus the
    /// [`metric_names::JOIN_HOPS`] histogram), so CBT signaling and D-GMC
    /// flood counts can be compared from the same registry.
    pub fn join_recorded(
        &mut self,
        net: &Network,
        member: NodeId,
        registry: &mut MetricsRegistry,
    ) -> Option<usize> {
        let hops = self.join(net, member)?;
        *registry.counter_slot(metric_names::JOIN_REQUESTS) += 1;
        *registry.counter_slot(metric_names::JOIN_HOPS_TOTAL) += hops as u64;
        registry.observe_named(metric_names::JOIN_HOPS, hops as u64);
        Some(hops)
    }

    /// Removes `member` and prunes the dangling branch toward the core.
    pub fn leave(&mut self, member: NodeId) {
        let mut terminals = self.tree.terminals().clone();
        terminals.remove(&member);
        self.tree.set_terminals(terminals);
        self.tree.prune_non_terminal_leaves();
    }

    /// Total link cost of the shared tree on `net`.
    pub fn cost(&self, net: &Network) -> Option<u64> {
        self.tree.total_cost(net)
    }

    /// Traffic concentration of the shared tree (max pair-paths per link).
    pub fn traffic_concentration(&self) -> u64 {
        dgmc_mctree::metrics::max_link_load(&self.tree)
    }
}

/// Picks the best core for a member set: the switch minimizing the maximum
/// shortest-path cost to any member (cost-eccentricity restricted to the
/// members), ties to the smaller id.
///
/// The paper points out that choosing a good core "depends on the locations
/// of connection members", information a public network may not reveal —
/// compare against [`worst_core`] to see the spread.
pub fn best_core(net: &Network, members: &BTreeSet<NodeId>) -> Option<NodeId> {
    core_by(net, members, false)
}

/// The adversarially bad core (maximizes the same objective); used to bound
/// how much core placement matters.
pub fn worst_core(net: &Network, members: &BTreeSet<NodeId>) -> Option<NodeId> {
    core_by(net, members, true)
}

fn core_by(net: &Network, members: &BTreeSet<NodeId>, worst: bool) -> Option<NodeId> {
    let mut best: Option<(u64, NodeId)> = None;
    for cand in net.nodes() {
        let spt = spf::shortest_path_tree(net, cand);
        let ecc = members
            .iter()
            .map(|&m| spt.cost_to(m))
            .collect::<Option<Vec<u64>>>()?
            .into_iter()
            .max()
            .unwrap_or(0);
        let better = match best {
            None => true,
            Some((cur, _)) => {
                if worst {
                    ecc > cur
                } else {
                    ecc < cur
                }
            }
        };
        if better {
            best = Some((ecc, cand));
        }
    }
    best.map(|(_, n)| n)
}

/// Convenience: build a CBT for `members` with the given core and return it
/// with the total join signaling hops.
pub fn build_cbt(net: &Network, core: NodeId, members: &BTreeSet<NodeId>) -> (CbtTree, usize) {
    let mut tree = CbtTree::new(core);
    let mut hops = 0;
    for &m in members {
        hops += tree.join(net, m).unwrap_or(0);
    }
    (tree, hops)
}

/// Eccentricity helper re-exported for core placement studies.
pub fn center_node(net: &Network) -> Option<NodeId> {
    net.nodes()
        .min_by_key(|&n| (metrics::hop_eccentricity(net, n), n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    fn members(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn joins_graft_onto_existing_tree() {
        let net = generate::path(5); // 0-1-2-3-4, core at 2
        let mut cbt = CbtTree::new(NodeId(2));
        assert_eq!(cbt.join(&net, NodeId(0)), Some(2), "0-1-2 full path");
        // 1 is already on the tree: a join from 1 stops immediately... 1 is
        // an intermediate node; its request meets the tree at hop 0? It IS
        // the tree, so 0 hops.
        assert_eq!(cbt.join(&net, NodeId(1)), Some(0));
        // 4 joins: 4-3-2, two hops to reach the tree at 2.
        assert_eq!(cbt.join(&net, NodeId(4)), Some(2));
        assert!(cbt.topology().is_tree());
        assert_eq!(cbt.members(), members(&[0, 1, 4]));
    }

    #[test]
    fn join_stops_at_first_tree_contact() {
        let net = generate::grid(3, 3);
        let mut cbt = CbtTree::new(NodeId(4)); // center
        cbt.join(&net, NodeId(0)); // 0-1-4 or 0-3-4
        let edges_before = cbt.topology().edge_count();
        // 6 is adjacent to 3; if 3 is on the tree the join is 1 hop.
        let hops = cbt.join(&net, NodeId(6)).unwrap();
        assert!(hops <= 2);
        assert!(cbt.topology().edge_count() > edges_before);
        assert!(cbt.topology().is_tree());
    }

    #[test]
    fn leave_prunes_branch_but_keeps_core() {
        let net = generate::path(5);
        let mut cbt = CbtTree::new(NodeId(2));
        cbt.join(&net, NodeId(0));
        cbt.join(&net, NodeId(4));
        cbt.leave(NodeId(0));
        assert!(!cbt.topology().touches(NodeId(0)));
        assert!(!cbt.topology().touches(NodeId(1)));
        assert!(cbt.topology().touches(NodeId(2)), "core stays");
        assert_eq!(cbt.members(), members(&[4]));
    }

    #[test]
    fn join_recorded_counts_signaling_into_the_registry() {
        let net = generate::path(5);
        let mut cbt = CbtTree::new(NodeId(2));
        let mut reg = MetricsRegistry::new();
        assert_eq!(cbt.join_recorded(&net, NodeId(0), &mut reg), Some(2));
        assert_eq!(cbt.join_recorded(&net, NodeId(4), &mut reg), Some(2));
        assert_eq!(reg.counter_value(metric_names::JOIN_REQUESTS), 2);
        assert_eq!(reg.counter_value(metric_names::JOIN_HOPS_TOTAL), 4);
        let hops = reg.histogram_get(metric_names::JOIN_HOPS).unwrap();
        assert_eq!(hops.count(), 2);
        assert_eq!(hops.max(), 2);
    }

    #[test]
    fn best_core_centers_the_members() {
        let net = generate::path(7);
        let m = members(&[0, 6]);
        assert_eq!(best_core(&net, &m), Some(NodeId(3)));
        let w = worst_core(&net, &m).unwrap();
        assert!(w == NodeId(0) || w == NodeId(6));
    }

    #[test]
    fn bad_core_has_worse_member_delay() {
        // Core quality is defined by the worst core-to-member distance; the
        // adversarial core must be strictly worse on an asymmetric layout.
        let net = generate::grid(4, 4);
        let m = members(&[0, 3, 12, 15]);
        let good = best_core(&net, &m).unwrap();
        let bad = worst_core(&net, &m).unwrap();
        let ecc = |core: NodeId| {
            let spt = spf::shortest_path_tree(&net, core);
            m.iter().map(|&x| spt.cost_to(x).unwrap()).max().unwrap()
        };
        assert!(ecc(good) < ecc(bad));
        // And the trees built from either stay valid.
        let (good_tree, _) = build_cbt(&net, good, &m);
        let (bad_tree, _) = build_cbt(&net, bad, &m);
        assert!(good_tree.topology().is_tree());
        assert!(bad_tree.topology().is_tree());
    }

    #[test]
    fn cbt_concentrates_traffic_vs_steiner() {
        // A star forces everything through the center either way, so use a
        // topology with alternatives: members on a ring, core off-center.
        let net = generate::ring(8);
        let m = members(&[0, 2, 4, 6]);
        let (cbt, _) = build_cbt(&net, NodeId(0), &m);
        let steiner = dgmc_mctree::algorithms::takahashi_matsuyama(&net, &m);
        assert!(cbt.traffic_concentration() >= dgmc_mctree::metrics::max_link_load(&steiner));
    }

    #[test]
    fn center_node_of_path_is_middle() {
        let net = generate::path(5);
        assert_eq!(center_node(&net), Some(NodeId(2)));
    }
}
