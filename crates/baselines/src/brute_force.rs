//! The brute-force LSR-based MC protocol (paper Section 2).
//!
//! "Upon receiving a membership LSA, each switch updates its local database
//! and invokes a procedure to compute a new topology for each MC affected by
//! the event." Same generality as D-GMC, but every switch computes — the
//! overhead D-GMC is designed to eliminate.

use dgmc_core::McId;
use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, Simulation};
use dgmc_lsr::flood::Flooder;
use dgmc_lsr::lsa::FloodPacket;
use dgmc_mctree::{McAlgorithm, McTopology, Role};
use dgmc_topology::{LinkId, Network, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// A flooded membership LSA of the brute-force protocol.
#[derive(Debug, Clone)]
pub struct BfLsa {
    /// The switch whose membership changed.
    pub source: NodeId,
    /// The affected connection.
    pub mc: McId,
    /// `true` for join, `false` for leave.
    pub join: bool,
    /// The member role (joins only).
    pub role: Role,
}

/// Messages delivered to a [`BfSwitch`].
#[derive(Debug, Clone)]
pub enum BfMsg {
    /// A flooded membership LSA arriving over `via`.
    Packet {
        /// The packet.
        packet: FloodPacket<BfLsa>,
        /// Arrival link.
        via: LinkId,
    },
    /// A local host joins `mc`.
    HostJoin {
        /// The connection.
        mc: McId,
        /// The member role.
        role: Role,
    },
    /// A local host leaves `mc`.
    HostLeave {
        /// The connection.
        mc: McId,
    },
    /// A `Tc` computation timer fired.
    ComputationDone {
        /// The connection being recomputed.
        mc: McId,
    },
}

/// Counter names bumped by [`BfSwitch`].
pub mod counters {
    /// Topology computations started (n per event, network-wide).
    pub const COMPUTATIONS: &str = "bf.computations";
    /// Flooding operations initiated (1 per event).
    pub const FLOODINGS: &str = "bf.floodings";
    /// Membership events accepted from local hosts.
    pub const MEMBER_EVENTS: &str = "bf.member_events";
}

#[derive(Debug, Default, Clone)]
struct BfMcState {
    members: BTreeMap<NodeId, Role>,
    installed: Option<McTopology>,
    computing: bool,
    /// Events arrived while computing: recompute when done.
    dirty: bool,
}

/// A switch running the brute-force LSR MC protocol.
pub struct BfSwitch {
    me: NodeId,
    tc: SimDuration,
    per_hop: SimDuration,
    flooder: Flooder,
    incident: Vec<(LinkId, NodeId)>,
    image: Network,
    algorithm: Rc<dyn McAlgorithm>,
    states: BTreeMap<McId, BfMcState>,
}

impl std::fmt::Debug for BfSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BfSwitch").field("me", &self.me).finish()
    }
}

impl BfSwitch {
    /// Creates a switch warm-started on `net`.
    pub fn new(
        me: NodeId,
        net: &Network,
        tc: SimDuration,
        per_hop: SimDuration,
        algorithm: Rc<dyn McAlgorithm>,
    ) -> BfSwitch {
        let incident = net
            .links()
            .filter(|l| (l.a == me || l.b == me) && l.is_up())
            .map(|l| (l.id, l.other(me)))
            .collect();
        BfSwitch {
            me,
            tc,
            per_hop,
            flooder: Flooder::new(me),
            incident,
            image: net.clone(),
            algorithm,
            states: BTreeMap::new(),
        }
    }

    /// The installed topology for `mc`, if any.
    pub fn installed(&self, mc: McId) -> Option<&McTopology> {
        self.states.get(&mc)?.installed.as_ref()
    }

    /// The member list this switch believes `mc` has.
    pub fn members(&self, mc: McId) -> BTreeSet<NodeId> {
        self.states
            .get(&mc)
            .map(|st| st.members.keys().copied().collect())
            .unwrap_or_default()
    }

    fn apply(&mut self, lsa: &BfLsa) {
        let st = self.states.entry(lsa.mc).or_default();
        if lsa.join {
            st.members.insert(lsa.source, lsa.role);
        } else {
            st.members.remove(&lsa.source);
        }
    }

    fn schedule_compute(&mut self, ctx: &mut Ctx<'_, BfMsg>, mc: McId) {
        let st = self.states.entry(mc).or_default();
        if st.computing {
            st.dirty = true;
            return;
        }
        st.computing = true;
        ctx.counter(counters::COMPUTATIONS).incr();
        ctx.schedule_self(self.tc, BfMsg::ComputationDone { mc });
    }

    fn flood(&mut self, ctx: &mut Ctx<'_, BfMsg>, lsa: BfLsa) {
        ctx.counter(counters::FLOODINGS).incr();
        let packet = self.flooder.originate(lsa);
        for &(link, neighbor) in &self.incident {
            ctx.send(
                ActorId(neighbor.0),
                self.per_hop,
                BfMsg::Packet {
                    packet: packet.clone(),
                    via: link,
                },
            );
        }
    }
}

impl Actor<BfMsg> for BfSwitch {
    fn handle(&mut self, ctx: &mut Ctx<'_, BfMsg>, env: Envelope<BfMsg>) {
        match env.msg {
            BfMsg::Packet { packet, via } => {
                if !self.flooder.accept(packet.id) {
                    return;
                }
                // Relay.
                for &(link, neighbor) in &self.incident {
                    if link == via {
                        continue;
                    }
                    ctx.send(
                        ActorId(neighbor.0),
                        self.per_hop,
                        BfMsg::Packet {
                            packet: packet.clone(),
                            via: link,
                        },
                    );
                }
                let lsa = packet.payload;
                self.apply(&lsa);
                self.schedule_compute(ctx, lsa.mc);
            }
            BfMsg::HostJoin { mc, role } => {
                let already = self
                    .states
                    .get(&mc)
                    .is_some_and(|st| st.members.contains_key(&self.me));
                if already {
                    return;
                }
                ctx.counter(counters::MEMBER_EVENTS).incr();
                let lsa = BfLsa {
                    source: self.me,
                    mc,
                    join: true,
                    role,
                };
                self.apply(&lsa);
                self.flood(ctx, lsa);
                self.schedule_compute(ctx, mc);
            }
            BfMsg::HostLeave { mc } => {
                let member = self
                    .states
                    .get(&mc)
                    .is_some_and(|st| st.members.contains_key(&self.me));
                if !member {
                    return;
                }
                ctx.counter(counters::MEMBER_EVENTS).incr();
                let lsa = BfLsa {
                    source: self.me,
                    mc,
                    join: false,
                    role: Role::SenderReceiver,
                };
                self.apply(&lsa);
                self.flood(ctx, lsa);
                self.schedule_compute(ctx, mc);
            }
            BfMsg::ComputationDone { mc } => {
                let algorithm = Rc::clone(&self.algorithm);
                let st = self.states.entry(mc).or_default();
                st.computing = false;
                let terminals: BTreeSet<NodeId> = st.members.keys().copied().collect();
                // Always from scratch (`previous = None`): switches see
                // member-list snapshots in different interleavings, so only
                // a history-free computation guarantees they converge to the
                // same tree once the member lists agree.
                let topo = algorithm.compute(&self.image, &terminals, None);
                st.installed = Some(topo);
                if st.dirty {
                    st.dirty = false;
                    self.schedule_compute(ctx, mc);
                }
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Builds a simulation with one [`BfSwitch`] per node.
pub fn build_bf_sim(
    net: &Network,
    tc: SimDuration,
    per_hop: SimDuration,
    algorithm: Rc<dyn McAlgorithm>,
) -> Simulation<BfMsg> {
    let mut sim = Simulation::new();
    for n in net.nodes() {
        sim.add_actor(Box::new(BfSwitch::new(
            n,
            net,
            tc,
            per_hop,
            Rc::clone(&algorithm),
        )));
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_mctree::SphStrategy;
    use dgmc_topology::generate;

    const MC: McId = McId(1);

    fn run_joins(net: &Network, joins: &[(u32, u64)]) -> Simulation<BfMsg> {
        let mut sim = build_bf_sim(
            net,
            SimDuration::micros(300),
            SimDuration::micros(10),
            Rc::new(SphStrategy::new()),
        );
        for &(node, ms) in joins {
            sim.inject(
                ActorId(node),
                SimDuration::millis(ms),
                BfMsg::HostJoin {
                    mc: MC,
                    role: Role::SenderReceiver,
                },
            );
        }
        sim.run_to_quiescence();
        sim
    }

    #[test]
    fn every_switch_computes_on_every_event() {
        let net = generate::grid(3, 3); // 9 switches
        let sim = run_joins(&net, &[(0, 0)]);
        // One event: one flooding, nine computations (paper's n per event).
        assert_eq!(sim.counter_value(counters::FLOODINGS), 1);
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 9);
    }

    #[test]
    fn sequential_events_scale_linearly() {
        let net = generate::grid(3, 3);
        let sim = run_joins(&net, &[(0, 0), (8, 10), (4, 20)]);
        assert_eq!(sim.counter_value(counters::FLOODINGS), 3);
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 27);
    }

    #[test]
    fn switches_converge_to_identical_trees() {
        let net = generate::grid(3, 3);
        let sim = run_joins(&net, &[(0, 0), (8, 10)]);
        let reference = sim
            .actor_as::<BfSwitch>(ActorId(0))
            .unwrap()
            .installed(MC)
            .cloned();
        assert!(reference.is_some());
        for i in 1..9 {
            let sw = sim.actor_as::<BfSwitch>(ActorId(i)).unwrap();
            assert_eq!(sw.installed(MC), reference.as_ref(), "switch {i}");
            assert_eq!(sw.members(MC).len(), 2);
        }
    }

    #[test]
    fn coalescing_bounds_burst_computations() {
        // A burst of 3 simultaneous events: each switch computes at most
        // once per arrival batch thanks to the dirty flag, never more than
        // events+1 times.
        let net = generate::grid(3, 3);
        let mut sim = build_bf_sim(
            &net,
            SimDuration::micros(300),
            SimDuration::micros(10),
            Rc::new(SphStrategy::new()),
        );
        for node in [0u32, 4, 8] {
            sim.inject(
                ActorId(node),
                SimDuration::ZERO,
                BfMsg::HostJoin {
                    mc: MC,
                    role: Role::SenderReceiver,
                },
            );
        }
        sim.run_to_quiescence();
        let comps = sim.counter_value(counters::COMPUTATIONS);
        assert!(comps >= 9, "at least one per switch");
        assert!(comps <= 9 * 4, "dirty-flag coalescing bounds recomputes");
        // Everyone still converges.
        let reference = sim
            .actor_as::<BfSwitch>(ActorId(0))
            .unwrap()
            .installed(MC)
            .cloned();
        for i in 1..9 {
            assert_eq!(
                sim.actor_as::<BfSwitch>(ActorId(i)).unwrap().installed(MC),
                reference.as_ref()
            );
        }
    }
}
