//! Baseline multipoint-connection protocols the paper compares against.
//!
//! * [`brute_force`] — the "brute-force LSR-based MC protocol" of Section 2:
//!   membership LSAs are flooded and **every** switch recomputes the
//!   topology of every affected MC on every event. Fully general, but "in a
//!   network with n switches, a single event could trigger n redundant
//!   computations".
//! * [`mospf`] — the MOSPF model: on-demand, data-driven computation of
//!   source-rooted shortest-path trees with a routing cache; membership
//!   changes flush caches and the next datagram triggers a computation at
//!   every on-tree router.
//! * [`cbt`] — the core-based tree model: a shared receiver-only tree grown
//!   by unicast join requests toward a core switch; cheap to signal but
//!   prone to traffic concentration and bad core placement.
//!
//! The DES baselines ([`brute_force`], [`mospf`]) expose the same counter
//! style as [`dgmc_core::switch`] so experiment harnesses can run identical
//! workloads through all protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute_force;
pub mod cbt;
pub mod mospf;
