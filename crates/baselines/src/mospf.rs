//! The MOSPF model: on-demand, data-driven source-rooted trees.
//!
//! "Upon receiving such a datagram for a multicast address M, the router
//! consults its local database for the member list of M and computes a
//! shortest-path tree, rooted at the source of the datagram ... then saves
//! this topology information in a routing cache and forwards the datagram
//! along the appropriate out-going links. This forwarding will trigger
//! further topology computations at other routers."
//!
//! Membership LSAs flush the affected cache entries, so after every
//! membership event the next datagram per source triggers one computation at
//! **every on-tree router** — the per-event overhead D-GMC's single
//! computation is compared against. That flush is the published protocol's
//! behavior and stays the default ([`build_mospf_sim`]); it is what the
//! comparison experiments measure.
//!
//! [`build_mospf_sim_incremental`] builds the *repairing* variant instead:
//! a membership LSA grafts/prunes every cached tree of the group in place
//! ([`dgmc_mctree::repair`]) rather than flushing, so the next datagram hits
//! the cache and no router recomputes. Repairs are exact (the cached tree
//! stays byte-identical to a from-scratch pruned SPT), which the tests pin;
//! the variant quantifies how much of MOSPF's per-event overhead is
//! recomputation that dynamic tree repair (Cho & Breen's observation)
//! eliminates.

use dgmc_core::McId;
use dgmc_des::{Actor, ActorId, Ctx, Envelope, SimDuration, Simulation};
use dgmc_lsr::flood::Flooder;
use dgmc_lsr::lsa::FloodPacket;
use dgmc_mctree::{algorithms, repair, McTopology};
use dgmc_topology::{LinkId, Network, NodeId, SpfCache};
use std::collections::{BTreeMap, BTreeSet};

/// A flooded group-membership LSA.
#[derive(Debug, Clone)]
pub struct MembershipLsa {
    /// The router whose attached membership changed.
    pub source: NodeId,
    /// The multicast group.
    pub group: McId,
    /// `true` for join, `false` for leave.
    pub join: bool,
}

/// Messages delivered to a [`MospfRouter`].
#[derive(Debug, Clone)]
pub enum MospfMsg {
    /// A flooded membership LSA arriving over `via`.
    Packet {
        /// The packet.
        packet: FloodPacket<MembershipLsa>,
        /// Arrival link.
        via: LinkId,
    },
    /// Local host joins `group`.
    HostJoin {
        /// The group.
        group: McId,
    },
    /// Local host leaves `group`.
    HostLeave {
        /// The group.
        group: McId,
    },
    /// A multicast datagram for `group` from `source` arriving over `via`
    /// (`None` at the ingress router).
    Data {
        /// The group address.
        group: McId,
        /// The originating router.
        source: NodeId,
        /// Arrival link.
        via: Option<LinkId>,
        /// Harness-assigned packet id.
        packet_id: u64,
    },
}

/// Counter names bumped by [`MospfRouter`].
pub mod counters {
    /// Shortest-path-tree computations (cache misses).
    pub const COMPUTATIONS: &str = "mospf.computations";
    /// Membership LSA floods originated.
    pub const FLOODINGS: &str = "mospf.floodings";
    /// Datagram copies delivered to local group members.
    pub const DELIVERED: &str = "mospf.delivered";
    /// Cached trees repaired in place on a membership LSA (incremental
    /// variant only; the default flush variant never bumps this).
    pub const REPAIRS: &str = "mospf.repairs";
}

/// A router in the MOSPF model.
pub struct MospfRouter {
    me: NodeId,
    per_hop: SimDuration,
    flooder: Flooder,
    incident: Vec<(LinkId, NodeId)>,
    image: Network,
    /// group -> member routers.
    members: BTreeMap<McId, BTreeSet<NodeId>>,
    /// (source, group) -> cached pruned SPT.
    cache: BTreeMap<(NodeId, McId), McTopology>,
    /// (group, packet id) -> copies delivered locally.
    delivered: BTreeMap<(McId, u64), u32>,
    /// Repair cached trees on membership change instead of flushing them.
    incremental: bool,
    /// Memoized SPF runs backing tree computations and grafts.
    spf: SpfCache,
}

impl std::fmt::Debug for MospfRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MospfRouter").field("me", &self.me).finish()
    }
}

impl MospfRouter {
    /// Creates a router warm-started on `net` with the published flush
    /// semantics.
    pub fn new(me: NodeId, net: &Network, per_hop: SimDuration) -> MospfRouter {
        let incident = net
            .links()
            .filter(|l| (l.a == me || l.b == me) && l.is_up())
            .map(|l| (l.id, l.other(me)))
            .collect();
        MospfRouter {
            me,
            per_hop,
            flooder: Flooder::new(me),
            incident,
            image: net.clone(),
            members: BTreeMap::new(),
            cache: BTreeMap::new(),
            delivered: BTreeMap::new(),
            incremental: false,
            spf: SpfCache::new(),
        }
    }

    /// Creates a router that repairs cached trees on membership change
    /// (graft on join, prune on leave) instead of flushing them.
    pub fn new_incremental(me: NodeId, net: &Network, per_hop: SimDuration) -> MospfRouter {
        MospfRouter {
            incremental: true,
            ..MospfRouter::new(me, net, per_hop)
        }
    }

    /// Copies of `(group, packet_id)` delivered to the local host.
    pub fn delivered_copies(&self, group: McId, packet_id: u64) -> u32 {
        self.delivered
            .get(&(group, packet_id))
            .copied()
            .unwrap_or(0)
    }

    /// Number of live cache entries (for cache-behavior tests).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The cached tree for `(source, group)`, if any (for repair-exactness
    /// tests).
    pub fn cached_tree(&self, source: NodeId, group: McId) -> Option<&McTopology> {
        self.cache.get(&(source, group))
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, MospfMsg>, lsa: &MembershipLsa) {
        let set = self.members.entry(lsa.group).or_default();
        if lsa.join {
            set.insert(lsa.source);
        } else {
            set.remove(&lsa.source);
        }
        if !self.incremental {
            // Membership changed: flush every cached tree of this group.
            self.cache.retain(|&(_, g), _| g != lsa.group);
            return;
        }
        // Incremental variant: every cached tree of the group is repaired
        // in place. The image is static here, so the precondition of the
        // repair ops (same network content as the cached computation) holds
        // and each repaired tree stays byte-identical to a recompute.
        let keys: Vec<(NodeId, McId)> = self
            .cache
            .keys()
            .copied()
            .filter(|&(_, g)| g == lsa.group)
            .collect();
        for key in keys {
            let tree = self.cache.get(&key).expect("key just listed");
            let repaired = if lsa.join {
                repair::graft_member(&self.image, key.0, tree, lsa.source, &self.spf)
            } else {
                repair::prune_member(key.0, tree, lsa.source)
            };
            ctx.counter(counters::REPAIRS).incr();
            self.cache.insert(key, repaired);
        }
    }

    fn flood(&mut self, ctx: &mut Ctx<'_, MospfMsg>, lsa: MembershipLsa) {
        ctx.counter(counters::FLOODINGS).incr();
        let packet = self.flooder.originate(lsa);
        for &(link, neighbor) in &self.incident {
            ctx.send(
                ActorId(neighbor.0),
                self.per_hop,
                MospfMsg::Packet {
                    packet: packet.clone(),
                    via: link,
                },
            );
        }
    }

    fn on_data(
        &mut self,
        ctx: &mut Ctx<'_, MospfMsg>,
        group: McId,
        source: NodeId,
        via: Option<LinkId>,
        packet_id: u64,
    ) {
        let tree = match self.cache.get(&(source, group)) {
            Some(t) => t.clone(),
            None => {
                // Cache miss: compute the source-rooted pruned SPT. The
                // SPF memo only speeds the simulator up; the modeled
                // computation still happens and is still counted.
                ctx.counter(counters::COMPUTATIONS).incr();
                let members = self.members.get(&group).cloned().unwrap_or_default();
                let t = algorithms::pruned_spt_with(&self.image, source, &members, &self.spf);
                self.cache.insert((source, group), t.clone());
                t
            }
        };
        // Deliver locally if a member.
        if self
            .members
            .get(&group)
            .is_some_and(|m| m.contains(&self.me))
        {
            ctx.counter(counters::DELIVERED).incr();
            *self.delivered.entry((group, packet_id)).or_insert(0) += 1;
        }
        // Forward along the tree, away from the arrival link.
        let from = via.and_then(|v| {
            self.incident
                .iter()
                .find(|&&(l, _)| l == v)
                .map(|&(_, n)| n)
        });
        for n in tree.neighbors_in(self.me) {
            if Some(n) == from {
                continue;
            }
            if let Some(&(link, _)) = self.incident.iter().find(|&&(_, nb)| nb == n) {
                ctx.send(
                    ActorId(n.0),
                    self.per_hop,
                    MospfMsg::Data {
                        group,
                        source,
                        via: Some(link),
                        packet_id,
                    },
                );
            }
        }
    }
}

impl Actor<MospfMsg> for MospfRouter {
    fn handle(&mut self, ctx: &mut Ctx<'_, MospfMsg>, env: Envelope<MospfMsg>) {
        match env.msg {
            MospfMsg::Packet { packet, via } => {
                if !self.flooder.accept(packet.id) {
                    return;
                }
                for &(link, neighbor) in &self.incident {
                    if link == via {
                        continue;
                    }
                    ctx.send(
                        ActorId(neighbor.0),
                        self.per_hop,
                        MospfMsg::Packet {
                            packet: packet.clone(),
                            via: link,
                        },
                    );
                }
                let lsa = packet.payload;
                self.apply(ctx, &lsa);
            }
            MospfMsg::HostJoin { group } => {
                let lsa = MembershipLsa {
                    source: self.me,
                    group,
                    join: true,
                };
                self.apply(ctx, &lsa);
                self.flood(ctx, lsa);
            }
            MospfMsg::HostLeave { group } => {
                let lsa = MembershipLsa {
                    source: self.me,
                    group,
                    join: false,
                };
                self.apply(ctx, &lsa);
                self.flood(ctx, lsa);
            }
            MospfMsg::Data {
                group,
                source,
                via,
                packet_id,
            } => {
                self.on_data(ctx, group, source, via, packet_id);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Builds a simulation with one [`MospfRouter`] per node.
pub fn build_mospf_sim(net: &Network, per_hop: SimDuration) -> Simulation<MospfMsg> {
    let mut sim = Simulation::new();
    for n in net.nodes() {
        sim.add_actor(Box::new(MospfRouter::new(n, net, per_hop)));
    }
    sim
}

/// Builds a simulation of [`MospfRouter::new_incremental`] routers: caches
/// are repaired on membership change rather than flushed.
pub fn build_mospf_sim_incremental(net: &Network, per_hop: SimDuration) -> Simulation<MospfMsg> {
    let mut sim = Simulation::new();
    for n in net.nodes() {
        sim.add_actor(Box::new(MospfRouter::new_incremental(n, net, per_hop)));
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgmc_topology::generate;

    const G: McId = McId(9);

    fn setup(net: &Network, members: &[u32]) -> Simulation<MospfMsg> {
        let mut sim = build_mospf_sim(net, SimDuration::micros(10));
        for (i, &m) in members.iter().enumerate() {
            sim.inject(
                ActorId(m),
                SimDuration::millis(i as u64),
                MospfMsg::HostJoin { group: G },
            );
        }
        sim.run_to_quiescence();
        sim
    }

    #[test]
    fn datagram_triggers_computation_at_every_on_tree_router() {
        let net = generate::path(5); // 0-1-2-3-4
        let mut sim = setup(&net, &[0, 4]);
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 0);
        sim.inject(
            ActorId(0),
            SimDuration::millis(10),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 1,
            },
        );
        sim.run_to_quiescence();
        // All 5 routers on the 0..4 path compute.
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 5);
        assert_eq!(
            sim.actor_as::<MospfRouter>(ActorId(4))
                .unwrap()
                .delivered_copies(G, 1),
            1
        );
    }

    #[test]
    fn cache_hits_avoid_recomputation() {
        let net = generate::path(5);
        let mut sim = setup(&net, &[0, 4]);
        for pid in 1..=3 {
            sim.inject(
                ActorId(0),
                SimDuration::millis(10 + pid),
                MospfMsg::Data {
                    group: G,
                    source: NodeId(0),
                    via: None,
                    packet_id: pid,
                },
            );
        }
        sim.run_to_quiescence();
        // Only the first datagram computes; the rest hit the cache.
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 5);
        assert_eq!(
            sim.actor_as::<MospfRouter>(ActorId(4))
                .unwrap()
                .delivered_copies(G, 3),
            1
        );
    }

    #[test]
    fn membership_change_flushes_caches() {
        let net = generate::path(5);
        let mut sim = setup(&net, &[0, 4]);
        sim.inject(
            ActorId(0),
            SimDuration::millis(10),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 1,
            },
        );
        sim.run_to_quiescence();
        let first = sim.counter_value(counters::COMPUTATIONS);
        // A new member joins: caches flush; the next datagram recomputes.
        sim.inject(
            ActorId(2),
            SimDuration::millis(20),
            MospfMsg::HostJoin { group: G },
        );
        sim.run_to_quiescence();
        assert_eq!(
            sim.actor_as::<MospfRouter>(ActorId(0)).unwrap().cache_len(),
            0
        );
        sim.inject(
            ActorId(0),
            SimDuration::millis(30),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 2,
            },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), first + 5);
    }

    #[test]
    fn incremental_variant_repairs_instead_of_recomputing() {
        let net = generate::path(5);
        let mut sim = build_mospf_sim_incremental(&net, SimDuration::micros(10));
        for (i, m) in [0u32, 4].into_iter().enumerate() {
            sim.inject(
                ActorId(m),
                SimDuration::millis(i as u64),
                MospfMsg::HostJoin { group: G },
            );
        }
        sim.run_to_quiescence();
        sim.inject(
            ActorId(0),
            SimDuration::millis(10),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 1,
            },
        );
        sim.run_to_quiescence();
        let first = sim.counter_value(counters::COMPUTATIONS);
        assert_eq!(first, 5, "the cold path still computes everywhere");
        // A join repairs every populated cache in place...
        sim.inject(
            ActorId(2),
            SimDuration::millis(20),
            MospfMsg::HostJoin { group: G },
        );
        sim.run_to_quiescence();
        let r0 = sim.actor_as::<MospfRouter>(ActorId(0)).unwrap();
        assert_eq!(r0.cache_len(), 1, "cache survives the membership change");
        let want: BTreeSet<NodeId> = [NodeId(0), NodeId(2), NodeId(4)].into();
        assert_eq!(
            r0.cached_tree(NodeId(0), G).unwrap(),
            &algorithms::pruned_spt(&net, NodeId(0), &want),
            "grafted tree equals a from-scratch recompute"
        );
        assert_eq!(sim.counter_value(counters::REPAIRS), 5);
        // ...so the next datagram triggers no computation and still reaches
        // the new member.
        sim.inject(
            ActorId(0),
            SimDuration::millis(30),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 2,
            },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), first);
        for m in [2u32, 4] {
            assert_eq!(
                sim.actor_as::<MospfRouter>(ActorId(m))
                    .unwrap()
                    .delivered_copies(G, 2),
                1,
                "member {m} got the post-join datagram"
            );
        }
        // A leave prunes the branch; the tree again equals a recompute.
        sim.inject(
            ActorId(4),
            SimDuration::millis(40),
            MospfMsg::HostLeave { group: G },
        );
        sim.run_to_quiescence();
        let r0 = sim.actor_as::<MospfRouter>(ActorId(0)).unwrap();
        let want: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into();
        assert_eq!(
            r0.cached_tree(NodeId(0), G).unwrap(),
            &algorithms::pruned_spt(&net, NodeId(0), &want)
        );
        sim.inject(
            ActorId(0),
            SimDuration::millis(50),
            MospfMsg::Data {
                group: G,
                source: NodeId(0),
                via: None,
                packet_id: 3,
            },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), first);
        assert_eq!(
            sim.actor_as::<MospfRouter>(ActorId(4))
                .unwrap()
                .delivered_copies(G, 3),
            0,
            "pruned member no longer receives"
        );
    }

    #[test]
    fn flush_variant_never_repairs() {
        let net = generate::path(4);
        let mut sim = setup(&net, &[0, 3]);
        sim.inject(
            ActorId(1),
            SimDuration::millis(10),
            MospfMsg::HostJoin { group: G },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.counter_value(counters::REPAIRS), 0);
    }

    #[test]
    fn off_tree_routers_never_compute() {
        let net = generate::star(6); // center 0, leaves 1..5
        let mut sim = setup(&net, &[1, 2]);
        sim.inject(
            ActorId(1),
            SimDuration::millis(10),
            MospfMsg::Data {
                group: G,
                source: NodeId(1),
                via: None,
                packet_id: 1,
            },
        );
        sim.run_to_quiescence();
        // Tree is 1-0-2: three computations, leaves 3..5 never compute.
        assert_eq!(sim.counter_value(counters::COMPUTATIONS), 3);
        for leaf in 3..=5u32 {
            assert_eq!(
                sim.actor_as::<MospfRouter>(ActorId(leaf))
                    .unwrap()
                    .cache_len(),
                0
            );
        }
    }
}
