//! Video broadcast scenario (the paper's asymmetric MC): a single station
//! streams to a dynamic audience of receiver-only subscribers — the
//! MOSPF/ATM point-to-multipoint use case, but maintained by one generic
//! protocol with one computation per membership change.
//!
//! Run with: `cargo run --release --example video_broadcast`

use dgmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        50,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(3);
    let station = NodeId(0);

    // The broadcaster registers as the (only) sender.
    sim.inject(
        ActorId(station.0),
        SimDuration::ZERO,
        SwitchMsg::HostJoin {
            mc,
            mc_type: McType::Asymmetric,
            role: Role::Sender,
        },
    );

    // Viewers tune in over time...
    let viewers = dgmc::topology::generate::sample_nodes(&mut rng, &net, 12);
    for (i, v) in viewers.iter().enumerate() {
        sim.inject(
            ActorId(v.0),
            SimDuration::millis(5 * (i as u64 + 1)),
            SwitchMsg::HostJoin {
                mc,
                mc_type: McType::Asymmetric,
                role: Role::Receiver,
            },
        );
    }
    sim.run_to_quiescence();
    let consensus = check_consensus(&sim, mc).expect("broadcast tree converged");
    println!(
        "station {station} + {} viewers share a tree of {} edges",
        consensus.members.len() - 1,
        consensus.topology.as_ref().unwrap().edge_count()
    );

    // Stream a frame.
    sim.inject(
        ActorId(station.0),
        SimDuration::millis(100),
        SwitchMsg::SendData { mc, packet_id: 1 },
    );
    sim.run_to_quiescence();
    let map = dgmc::protocol::convergence::delivery_map(&sim, mc, 1);
    let received = viewers.iter().filter(|v| map[v] == 1).count();
    println!("frame 1 delivered to {received}/{} viewers", viewers.len());
    assert_eq!(received, viewers.len());

    // ... and half of them tune out again; the tree shrinks incrementally.
    for (i, v) in viewers.iter().take(viewers.len() / 2).enumerate() {
        sim.inject(
            ActorId(v.0),
            SimDuration::millis(200 + 5 * i as u64),
            SwitchMsg::HostLeave { mc },
        );
    }
    sim.run_to_quiescence();
    let consensus = check_consensus(&sim, mc).expect("still converged after churn");
    println!(
        "after churn: {} members, tree has {} edges",
        consensus.members.len(),
        consensus.topology.as_ref().unwrap().edge_count()
    );

    // Remaining viewers still get frames exactly once.
    sim.inject(
        ActorId(station.0),
        SimDuration::millis(300),
        SwitchMsg::SendData { mc, packet_id: 2 },
    );
    sim.run_to_quiescence();
    let map = dgmc::protocol::convergence::delivery_map(&sim, mc, 2);
    for v in viewers.iter().skip(viewers.len() / 2) {
        assert_eq!(map[v], 1, "viewer {v} lost the stream");
    }
    println!("frame 2 delivered to all remaining viewers exactly once");
}
