//! Fault tolerance scenario (the paper's Section 6 claim: "being a
//! link-state routing protocol, D-GMC has an intrinsic advantage in fault
//! tolerance"): a link carrying a multipoint connection fails, the detecting
//! switch floods the event, and a repaired tree is installed everywhere —
//! then the link recovers and the tree can improve again.
//!
//! Run with: `cargo run --release --example failure_recovery`

use dgmc::prelude::*;
use std::rc::Rc;

fn main() {
    // A ring makes the detour visible: 0-1-2-...-7-0.
    let net = dgmc::topology::generate::ring(8);
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(1);

    for (i, member) in [0u32, 3].into_iter().enumerate() {
        sim.inject(
            ActorId(member),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();
    let tree = check_consensus(&sim, mc).unwrap().topology.unwrap();
    println!("initial tree: {:?}", tree.edges().collect::<Vec<_>>());
    assert!(tree.contains_edge(NodeId(1), NodeId(2)), "short side used");

    // The 1-2 link dies. Switch 1 (lower id) detects and advertises; the
    // affected MC gets its link-event MC LSA and a repaired proposal.
    let link = net.link_between(NodeId(1), NodeId(2)).unwrap().id;
    println!("cutting link 1-2 ...");
    inject_link_event(&mut sim, &net, link, false, SimDuration::millis(10));
    sim.run_to_quiescence();

    let repaired = check_consensus(&sim, mc).unwrap().topology.unwrap();
    println!("repaired tree: {:?}", repaired.edges().collect::<Vec<_>>());
    assert!(!repaired.contains_edge(NodeId(1), NodeId(2)));

    // Data still flows end to end over the detour.
    sim.inject(
        ActorId(0),
        SimDuration::millis(20),
        SwitchMsg::SendData { mc, packet_id: 1 },
    );
    sim.run_to_quiescence();
    assert_eq!(
        dgmc::protocol::convergence::delivery_map(&sim, mc, 1)[&NodeId(3)],
        1
    );
    println!("data delivered over the detour");

    // The link comes back; future membership changes may use it again.
    println!("repairing link 1-2 ...");
    inject_link_event(&mut sim, &net, link, true, SimDuration::millis(30));
    sim.run_to_quiescence();

    // A new member joins; the incremental update can use the short side.
    sim.inject(
        ActorId(2),
        SimDuration::millis(40),
        SwitchMsg::HostJoin {
            mc,
            mc_type: McType::Symmetric,
            role: Role::SenderReceiver,
        },
    );
    sim.run_to_quiescence();
    let final_tree = check_consensus(&sim, mc).unwrap().topology.unwrap();
    println!("final tree: {:?}", final_tree.edges().collect::<Vec<_>>());
    println!(
        "signaling totals: {} computations, {} floodings, {} router floods",
        sim.counter_value(dgmc::protocol::switch::counters::COMPUTATIONS),
        sim.counter_value(dgmc::protocol::switch::counters::FLOODINGS),
        sim.counter_value(dgmc::protocol::switch::counters::ROUTER_FLOODS),
    );
}
