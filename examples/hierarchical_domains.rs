//! Hierarchical domains scenario (the paper's "ongoing work" extension):
//! a 144-switch network split into PNNI-style areas, where membership
//! events flood only their own area and cross-area connections are stitched
//! over a backbone of border switches.
//!
//! Run with: `cargo run --release --example hierarchical_domains`

use dgmc::hierarchy::backbone::Backbone;
use dgmc::hierarchy::{scope, AreaMap, HierarchicalMc};
use dgmc::prelude::*;
use std::collections::BTreeSet;

fn main() {
    let net = dgmc::topology::generate::grid(12, 12);
    println!("flat network: {} switches", net.len());

    let map = AreaMap::partition(&net, 9);
    let backbone = Backbone::build(&net, &map);
    println!(
        "partitioned into {} areas; {} border switches, {} backbone links",
        map.area_count(),
        map.borders(&net).len(),
        backbone.logical_link_count()
    );

    // Flood-scope win: how far a membership advertisement travels.
    let (intra, cross) = scope::average_scopes(&net, &map, &backbone);
    println!(
        "flood scope per event: flat {} switches; hierarchical {} (intra-area) / {} (cross-area)",
        intra.flat, intra.hierarchical, cross.hierarchical
    );
    println!("intra-area events shrink {:.1}x", intra.reduction());

    // A cross-area videoconference: members in three different corners.
    let members: BTreeSet<NodeId> = [NodeId(0), NodeId(11), NodeId(132), NodeId(77)].into();
    let mc = HierarchicalMc::compute(&net, &map, &backbone, &members).expect("members reachable");
    let tree = mc.topology();
    println!(
        "cross-area MC spans {} areas via attachments {:?}",
        mc.member_areas().len(),
        mc.attachments().values().collect::<Vec<_>>()
    );
    assert_eq!(tree.validate(&net, &members), Ok(()));

    // The hierarchical tree is an ordinary flat proposal; compare its cost.
    let flat = dgmc::mctree::algorithms::takahashi_matsuyama(&net, &members);
    println!(
        "tree cost: hierarchical {} vs flat heuristic {} ({} edges vs {})",
        tree.total_cost(&net).unwrap(),
        flat.total_cost(&net).unwrap(),
        tree.edge_count(),
        flat.edge_count()
    );

    // Every member is reachable along the tree.
    let reach = tree.hops_from(NodeId(0));
    for &m in &members {
        assert!(reach.contains_key(&m));
    }
    println!("all members reachable along the hierarchical tree");
}
