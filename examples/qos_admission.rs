//! QoS admission scenario: the paper's argument for event-driven topology
//! computation is that "an on-demand approach cannot be applied if quality
//! of service (QoS) negotiation is needed prior to data transmission" —
//! D-GMC installs topologies before data flows, so bandwidth can be
//! negotiated per connection. This example admits video conferences onto a
//! capacity-limited network until links saturate, watches trees detour
//! around congested links, and reclaims capacity when a conference ends.
//!
//! Run with: `cargo run --release --example qos_admission`

use dgmc::mctree::qos::{AdmissionError, CapacityPlan};
use dgmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        40,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    // Every link carries 100 Mbit/s; each conference wants 40 Mbit/s.
    let mut plan = CapacityPlan::uniform(&net, 100);
    let demand = 40;

    let mut admitted = Vec::new();
    let mut rejected = 0;
    for conference in 1..=12u32 {
        let members: BTreeSet<NodeId> = dgmc::topology::generate::sample_nodes(&mut rng, &net, 4)
            .into_iter()
            .collect();
        match plan.admit(&net, conference, &members, demand) {
            Ok(tree) => {
                println!(
                    "conference {conference:>2}: ADMITTED, tree cost {} over {} links",
                    tree.total_cost(&net).unwrap_or(0),
                    tree.edge_count()
                );
                admitted.push(conference);
            }
            Err(AdmissionError::Infeasible { unspanned }) => {
                println!(
                    "conference {conference:>2}: REJECTED, no {demand} Mbit/s tree reaches {unspanned}"
                );
                rejected += 1;
            }
            Err(e) => println!("conference {conference:>2}: REJECTED ({e})"),
        }
    }
    println!(
        "{} conferences admitted, {rejected} rejected at capacity",
        plan.admitted_count()
    );
    assert_eq!(admitted.len(), plan.admitted_count());

    // The first conference hangs up; its bandwidth becomes available again.
    let first = admitted[0];
    plan.release(first).expect("ledger holds this reservation");
    println!("conference {first} ended; retrying one more admission...");
    let members: BTreeSet<NodeId> = dgmc::topology::generate::sample_nodes(&mut rng, &net, 4)
        .into_iter()
        .collect();
    match plan.admit(&net, 100, &members, demand) {
        Ok(_) => println!("late conference ADMITTED into the reclaimed capacity"),
        Err(e) => println!("late conference still rejected: {e}"),
    }
}
