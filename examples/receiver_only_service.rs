//! Receiver-only MC scenario (the paper's CBT generalization): a replicated
//! logging service whose replicas form a receiver-only connection. *Any*
//! switch — member or not — can inject a record: the packet unicasts to the
//! nearest tree node (its *contact*) and is then distributed along the tree.
//! Unlike CBT there is no distinguished core, so there is no bad-core
//! placement problem.
//!
//! Run with: `cargo run --release --example receiver_only_service`

use dgmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        40,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(11);

    // Five replicas subscribe as receivers.
    let replicas = dgmc::topology::generate::sample_nodes(&mut rng, &net, 5);
    println!("log replicas: {replicas:?}");
    for (i, r) in replicas.iter().enumerate() {
        sim.inject(
            ActorId(r.0),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc,
                mc_type: McType::ReceiverOnly,
                role: Role::Receiver,
            },
        );
    }
    sim.run_to_quiescence();
    let consensus = check_consensus(&sim, mc).expect("replica tree converged");
    let tree = consensus.topology.clone().expect("tree installed");
    println!("replica tree: {} edges", tree.edge_count());

    // Every switch in the network writes one log record, including switches
    // far off the tree. Each record must land on all replicas exactly once.
    let mut writers = 0u64;
    for writer in net.nodes() {
        sim.inject(
            ActorId(writer.0),
            SimDuration::millis(100 + writer.0 as u64),
            SwitchMsg::SendData {
                mc,
                packet_id: u64::from(writer.0),
            },
        );
        writers += 1;
    }
    sim.run_to_quiescence();

    let mut total = 0u32;
    for writer in net.nodes() {
        let copies = dgmc::protocol::convergence::total_deliveries(&sim, mc, u64::from(writer.0));
        assert_eq!(
            copies as usize,
            replicas.len(),
            "record from {writer} mis-delivered"
        );
        total += copies;
    }
    println!(
        "{writers} writers x {} replicas = {total} deliveries, all exactly-once",
        replicas.len()
    );

    // Contact-node behavior: a record from an off-tree switch used unicast
    // stage one, so non-replica switches forwarded but never consumed it.
    let off_tree_writer = net
        .nodes()
        .find(|n| !tree.touches(*n))
        .expect("some switch is off-tree");
    println!("e.g. writer {off_tree_writer} is off-tree; its record reached the tree via its contact node");
}
