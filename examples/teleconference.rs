//! Teleconference scenario (the paper's motivating symmetric MC): a
//! multi-party conversation with a very busy start — many participants
//! join within microseconds of each other, producing exactly the
//! conflicting, concurrently proposed topologies D-GMC's timestamps are
//! designed to reconcile.
//!
//! Run with: `cargo run --release --example teleconference`

use dgmc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let net = dgmc::topology::generate::waxman(
        &mut rng,
        60,
        &dgmc::topology::generate::WaxmanParams::default(),
    );
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );
    let mc = McId(7);

    // Record every install decision so we can reconstruct, per MC, when the
    // conference topology actually landed at each switch.
    let decisions = sim.observer().attach_log(4096);

    // Ten participants all "dial in" within a 100us window.
    let participants = dgmc::topology::generate::sample_nodes(&mut rng, &net, 10);
    println!("participants: {participants:?}");
    for (i, p) in participants.iter().enumerate() {
        sim.inject(
            ActorId(p.0),
            SimDuration::micros(i as u64 * 10),
            SwitchMsg::HostJoin {
                mc,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }
    sim.run_to_quiescence();

    let consensus = check_consensus(&sim, mc).expect("conference converged");
    let tree = consensus.topology.expect("tree installed");
    println!(
        "converged: {} members share a tree of {} edges (cost {})",
        consensus.members.len(),
        tree.edge_count(),
        tree.total_cost(&net).expect("tree valid on ground truth"),
    );

    let events = sim.counter_value(dgmc::protocol::switch::counters::MEMBER_EVENTS);
    let computations = sim.counter_value(dgmc::protocol::switch::counters::COMPUTATIONS);
    let floodings = sim.counter_value(dgmc::protocol::switch::counters::FLOODINGS);
    let withdrawn = sim.counter_value(dgmc::protocol::switch::counters::WITHDRAWN);
    println!(
        "bursty-start overhead: {:.1} computations/event, {:.1} floodings/event ({withdrawn} proposals withdrawn as stale)",
        computations as f64 / events as f64,
        floodings as f64 / events as f64,
    );

    // Per-MC convergence timeline, reconstructed from the decision log:
    // each winning proposal shown as one install wave sweeping the network.
    println!("\nconvergence timeline for MC {}:", mc.0);
    let log = decisions.borrow();
    // (source switch, edge count) -> (first install us, last install us, #switches)
    let mut waves: std::collections::BTreeMap<(u32, usize), (u64, u64, usize)> =
        std::collections::BTreeMap::new();
    for e in log.iter().filter(|e| e.mc == u64::from(mc.0)) {
        if let dgmc::obs::DecisionKind::TopologyInstalled { edges, source } = e.kind {
            let t = e.at_nanos / 1_000;
            waves
                .entry((source, edges))
                .and_modify(|(_, last, count)| {
                    *last = t;
                    *count += 1;
                })
                .or_insert((t, t, 1));
        }
    }
    let mut waves: Vec<_> = waves.into_iter().collect();
    waves.sort_by_key(|&(_, (first, ..))| first);
    for ((source, edges), (first, last, count)) in waves {
        println!(
            "  t={first:>6}us..{last:>6}us  proposal by switch {source:>2} ({edges:>2} edges) installed at {count} switch(es)"
        );
    }
    drop(log);

    // Proposal-to-install latency, straight from the metrics registry the
    // switches feed during the run.
    if let Some(h) = sim
        .metrics()
        .histogram_get(dgmc::protocol::switch::histograms::INSTALL_LATENCY_US)
    {
        println!(
            "proposal-to-install latency: {} installs, p50 {}us, p90 {}us, max {}us",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.max()
        );
    }

    // Everyone speaks once; everyone else hears exactly one copy.
    for (k, p) in participants.iter().enumerate() {
        sim.inject(
            ActorId(p.0),
            SimDuration::millis(k as u64 + 1),
            SwitchMsg::SendData {
                mc,
                packet_id: k as u64,
            },
        );
    }
    sim.run_to_quiescence();
    for (k, speaker) in participants.iter().enumerate() {
        let heard = dgmc::protocol::convergence::total_deliveries(&sim, mc, k as u64);
        assert_eq!(heard as usize, participants.len(), "speaker {speaker}");
    }
    println!(
        "audio check passed: each of {} utterances reached all {} participants exactly once",
        participants.len(),
        participants.len()
    );
}
