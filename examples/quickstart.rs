//! Quickstart: build a small network, create a symmetric multipoint
//! connection with three members, and watch every switch converge on the
//! same multicast tree.
//!
//! Run with: `cargo run --example quickstart`

use dgmc::prelude::*;
use std::rc::Rc;

fn main() {
    // A 4x4 grid of switches with unit-cost links.
    let net = dgmc::topology::generate::grid(4, 4);
    println!(
        "network: {} switches, {} links, hop diameter {}",
        net.len(),
        net.link_count(),
        dgmc::topology::metrics::hop_diameter(&net)
    );

    // One D-GMC switch actor per node; ATM-LAN timing (Tc = 300us dominates).
    let mut sim = build_dgmc_sim(
        &net,
        DgmcConfig::computation_dominated(),
        Rc::new(SphStrategy::new()),
    );

    // Attach the protocol decision log: every detect/compute/flood/install
    // decision is recorded with its R/E/C timestamps (bounded ring, so a
    // long run keeps only the newest decisions).
    let decisions = sim.observer().attach_log(256);

    // Three corners join a teleconference-style symmetric MC.
    let mc = McId(1);
    for (i, corner) in [0u32, 3, 12].into_iter().enumerate() {
        sim.inject(
            ActorId(corner),
            SimDuration::millis(i as u64),
            SwitchMsg::HostJoin {
                mc,
                mc_type: McType::Symmetric,
                role: Role::SenderReceiver,
            },
        );
    }

    // Drive the simulation until no LSAs or computations remain.
    sim.run_to_quiescence();

    // Every switch must agree on the member list and the installed tree.
    let consensus = check_consensus(&sim, mc).expect("all switches agree");
    println!(
        "members: {:?}",
        consensus.members.keys().collect::<Vec<_>>()
    );
    let tree = consensus.topology.expect("a tree was installed");
    println!("installed tree ({} edges):", tree.edge_count());
    for (a, b) in tree.edges() {
        println!("  {a} -- {b}");
    }
    println!(
        "signaling cost: {} topology computations, {} floodings",
        sim.counter_value(dgmc::protocol::switch::counters::COMPUTATIONS),
        sim.counter_value(dgmc::protocol::switch::counters::FLOODINGS),
    );

    // How the protocol got there, decision by decision.
    println!("\ndecision log (last 12 of {}):", decisions.borrow().len());
    print!("{}", decisions.borrow().timeline(12));

    // Send a data packet from one member; it reaches the others exactly once.
    sim.inject(
        ActorId(0),
        SimDuration::millis(10),
        SwitchMsg::SendData { mc, packet_id: 1 },
    );
    sim.run_to_quiescence();
    let deliveries = dgmc::protocol::convergence::delivery_map(&sim, mc, 1);
    for (node, copies) in deliveries.iter().filter(|(_, &c)| c > 0) {
        println!("host at {node} received {copies} copy/copies");
    }
}
